package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"smtexplore/internal/faultinject"
	"smtexplore/internal/tenant"
)

// retryAfter derives the Retry-After hint for shed responses from the
// measured queue-wait EWMA: twice the recent wait (a shed submission
// would have joined the back of that queue), floored at 1s so an idle
// service still rate-limits retries, capped at 30s so a congestion
// spike cannot park clients for minutes.
func (s *Service) retryAfter() string {
	s.mu.Lock()
	ewma := s.queueWaitEWMA
	s.mu.Unlock()
	secs := int(math.Ceil(2 * ewma))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Cells []CellSpec `json:"cells"`
	// Priority orders the queue (higher first, default 0); a
	// high-priority job may preempt running lower-priority work when
	// checkpointing is enabled.
	Priority int `json:"priority,omitempty"`
	// Deadline is a Go duration ("30s", "5m") measured from admission;
	// empty means none. It becomes an absolute deadline on the job.
	Deadline string `json:"deadline,omitempty"`
	// Tenant is the identity to account the job to; the X-Tenant
	// header takes precedence when both are set. The body field exists
	// so the cluster coordinator can forward tenancy to workers
	// without a custom header path. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// CellStatus is the progress view of one cell (results stripped).
type CellStatus struct {
	Index int    `json:"index"`
	Label string `json:"label"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} body (and the submit response).
type JobStatus struct {
	ID      string         `json:"id"`
	State   string         `json:"state"`
	Error   string         `json:"error,omitempty"`
	Created time.Time      `json:"created"`
	Cells   []CellStatus   `json:"cells"`
	Counts  map[string]int `json:"counts"`
}

// JobResult is the GET /v1/jobs/{id}/result body.
type JobResult struct {
	ID    string       `json:"id"`
	State string       `json:"state"`
	Error string       `json:"error,omitempty"`
	Cells []CellResult `json:"cells"`
}

// Status snapshots the job's progress view (cells without results).
// Exported for the cluster coordinator, which mirrors remote jobs into
// local Job trackers and serves the same HTTP shapes.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.ID,
		State:   j.state,
		Error:   j.errMsg,
		Created: j.created,
		Counts:  map[string]int{},
	}
	for _, c := range j.cells {
		st.Cells = append(st.Cells, CellStatus{Index: c.Index, Label: c.Label, State: c.State, Error: c.Error})
		st.Counts[c.State]++
	}
	return st
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs                                  submit a batch
//	GET    /v1/jobs                                  list jobs
//	GET    /v1/jobs/{id}                             job status
//	DELETE /v1/jobs/{id}                             cancel
//	GET    /v1/jobs/{id}/events                      SSE progress stream
//	GET    /v1/jobs/{id}/result                      full results (terminal jobs)
//	GET    /v1/jobs/{id}/cells/{cell}/result         one cell's result (?format=text)
//	GET    /v1/jobs/{id}/cells/{cell}/artifacts/{name}  obs artifact of an observed cell
//	GET    /v1/stats                                 JSON metrics snapshot (cluster telemetry)
//	GET    /healthz                                  liveness (503 while draining)
//	GET    /metrics                                  Prometheus text metrics
//	POST   /v1/faults                                arm a faultinject plan (requires AllowFaultAPI)
//	DELETE /v1/faults                                disarm the active plan (requires AllowFaultAPI)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/cells/{cell}/result", s.handleCellResult)
	mux.HandleFunc("GET /v1/jobs/{id}/cells/{cell}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/faults", s.handleArmFaults)
	mux.HandleFunc("DELETE /v1/faults", s.handleDisarmFaults)
	return mux
}

// handleArmFaults arms a faultinject plan process-wide — the chaos
// harness's disk-fault axis. Gated behind -allow-fault-api: a daemon
// not started for chaos testing refuses with 403 so no client can turn
// fault injection on in production.
func (s *Service) handleArmFaults(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.AllowFaultAPI {
		writeError(w, http.StatusForbidden, "fault API disabled; start smtd with -allow-fault-api to enable it")
		return
	}
	var plan faultinject.Plan
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&plan); err != nil {
		writeError(w, http.StatusBadRequest, "bad fault plan: "+err.Error())
		return
	}
	in, err := faultinject.New(plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad fault plan: "+err.Error())
		return
	}
	faultinject.Arm(in)
	writeJSON(w, http.StatusOK, map[string]any{"armed": true, "rules": len(plan.Rules)})
}

func (s *Service) handleDisarmFaults(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.AllowFaultAPI {
		writeError(w, http.StatusForbidden, "fault API disabled; start smtd with -allow-fault-api to enable it")
		return
	}
	faultinject.Disarm()
	writeJSON(w, http.StatusOK, map[string]any{"armed": false})
}

// handleStats serves the structured metrics snapshot as JSON — the
// machine-readable twin of /metrics. The cluster coordinator polls it
// for queue-wait and checkpoint telemetry (steal and migration
// accounting) without scraping Prometheus text.
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	opts := SubmitOptions{IdemKey: r.Header.Get("Idempotency-Key"), Priority: req.Priority}
	opts.Tenant = req.Tenant
	if h := r.Header.Get("X-Tenant"); h != "" {
		opts.Tenant = h
	}
	if opts.Tenant != "" && !tenant.ValidName(opts.Tenant) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid tenant name %q", opts.Tenant))
		return
	}
	if req.Deadline != "" {
		d, err := time.ParseDuration(req.Deadline)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad deadline: "+err.Error())
			return
		}
		opts.Deadline = time.Now().Add(d)
	}
	j, err := s.SubmitWith(req.Cells, opts)
	var quotaErr *QuotaError
	switch {
	case errors.As(err, &quotaErr):
		// Per-tenant quota refusal: 429 with the exhausted quota's
		// cause, so the client can tell its own overrun from service
		// overload. Backoff hint tracks measured congestion.
		w.Header().Set("Retry-After", s.retryAfter())
		w.Header().Set("X-Quota-Cause", quotaErr.Cause)
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShedLoad):
		// Backpressure: tell the client when to come back, scaled to
		// the queue wait recent jobs actually experienced.
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDeadlineExpired):
		// Shed, but pointless to retry as-is: the client must send a
		// fresh (positive) deadline.
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrJournal):
		// The job was refused, not lost: retrying is safe and the store
		// may have recovered by then.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	var out []JobStatus
	for _, j := range s.Jobs() {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Service) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
	}
	return j, ok
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	j, _ := s.Job(id)
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	state, errMsg := j.State()
	switch state {
	case JobDone, JobFailed, JobCancelled:
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is %s; results are available once it is terminal", j.ID, state))
		return
	}
	writeJSON(w, http.StatusOK, JobResult{ID: j.ID, State: state, Error: errMsg, Cells: j.Results()})
}

func (s *Service) cell(w http.ResponseWriter, r *http.Request) (*Job, CellResult, bool) {
	j, ok := s.job(w, r)
	if !ok {
		return nil, CellResult{}, false
	}
	i, err := strconv.Atoi(r.PathValue("cell"))
	results := j.Results()
	if err != nil || i < 0 || i >= len(results) {
		writeError(w, http.StatusNotFound, "unknown cell "+r.PathValue("cell"))
		return nil, CellResult{}, false
	}
	return j, results[i], true
}

func (s *Service) handleCellResult(w http.ResponseWriter, r *http.Request) {
	_, res, ok := s.cell(w, r)
	if !ok {
		return
	}
	switch res.State {
	case CellDone, CellFailed, CellCancelled:
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("cell %d is %s", res.Index, res.State))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		if res.State != CellDone {
			writeError(w, http.StatusConflict, fmt.Sprintf("cell %d %s: %s", res.Index, res.State, res.Error))
			return
		}
		if res.Text == "" {
			writeError(w, http.StatusBadRequest, "text format is only available for harness cells")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Text)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, res, ok := s.cell(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	listed := false
	for _, a := range res.Artifacts {
		if a == name {
			listed = true
			break
		}
	}
	if !listed {
		writeError(w, http.StatusNotFound, "unknown artifact "+name)
		return
	}
	// Names come from the artifact list the service built itself (a slug
	// plus a fixed suffix), never from path-traversable client input.
	path := filepath.Join(s.cfg.ArtifactDir, j.ID, fmt.Sprintf("cell-%d", res.Index), name)
	f, err := os.Open(path)
	if err != nil {
		writeError(w, http.StatusNotFound, "artifact not on disk: "+name)
		return
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	http.ServeContent(w, r, name, info.ModTime(), f)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if b := s.cfg.Breaker; b != nil && b.Degraded() {
		// Degraded is still alive (memory-only caching), so the status
		// stays 200 — a restart would not help. Each poll doubles as a
		// recovery probe, so health checking drives the breaker closed
		// again once the disk heals.
		b.Probe()
		if b.Degraded() {
			fmt.Fprintln(w, "degraded")
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// handleEvents streams job progress as Server-Sent Events: the full
// event history replays first, then live events as cells complete. The
// stream ends with an "end" event carrying the terminal job state, so a
// client can distinguish done / failed / cancelled without a second
// request.
//
// Every progress event carries an SSE id (its sequence number), and a
// reconnecting client resumes where it left off via the standard
// Last-Event-ID header (or ?since=<seq>, for clients without header
// control): events after that point replay, then the stream follows
// live — no duplicates, no gaps. The end event carries no id, so a
// reconnect after it replays from the right spot instead of past it.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	ServeJobEvents(w, r, j)
}

// ServeJobEvents streams one job's progress as SSE (see handleEvents
// for the protocol). Exported so the cluster coordinator can serve the
// identical stream for its mirrored jobs — smtctl wait cannot tell a
// coordinator from a single daemon.
func ServeJobEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	next := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			next = n + 1
		}
	} else if v := r.URL.Query().Get("since"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			next = n + 1
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	for {
		evs, notify, terminal := j.EventsSince(next)
		for _, ev := range evs {
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			next++
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			// Re-check freshness: only finish once every event is out.
			if evs2, _, _ := j.EventsSince(next); len(evs2) == 0 {
				state, errMsg := j.State()
				data, _ := json.Marshal(map[string]string{"job": j.ID, "state": state, "error": errMsg})
				fmt.Fprintf(w, "event: end\ndata: %s\n\n", data)
				flusher.Flush()
				return
			}
			continue
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}
