// Package report encodes the paper's quantitative claims and evaluates
// the reproduction against them programmatically: it collects every
// figure's data through internal/experiments and renders a verdict table
// (the generated counterpart of EXPERIMENTS.md's summary).
//
// A "pass" means the *shape* holds — the method ordering, the sign of a
// speedup, the direction and rough magnitude of a counter change — not
// that absolute numbers match the 2006 testbed (see DESIGN.md §2).
package report

import (
	"context"
	"fmt"
	"strings"

	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
	"smtexplore/internal/runner"
	"smtexplore/internal/streams"
)

// Data is the full measurement set the claims are evaluated against.
type Data struct {
	Fig1      []experiments.Fig1Row
	Fig2a     []experiments.Fig2Cell
	Fig2b     []experiments.Fig2Cell
	MM        []experiments.KernelMetrics
	LU        []experiments.KernelMetrics
	CG        []experiments.KernelMetrics
	BT        []experiments.KernelMetrics
	Table1    []experiments.Table1Column
	Sync      []experiments.AblationRow
	Span      []experiments.AblationRow
	Selective experiments.SelectiveHaltResult

	// MMLabel/LULabel name the size class used for the kernel claims.
	MMLabel, LULabel string
}

// Options sizes the collection runs.
type Options struct {
	// MMSizes / LUSizes override the figure sweeps (nil = full sweep).
	MMSizes []int
	LUSizes []int
	// SkipStreams skips the Figure 1/2 collection (kernel-only reports).
	SkipStreams bool
	// SkipAblations skips the §3.1/§3.2 studies.
	SkipAblations bool
	// Workers bounds the concurrent simulation cells within each
	// experiment (≤0 → GOMAXPROCS).
	Workers int
	// Cache overrides the per-collection result cache (nil → a fresh
	// in-memory one). Attach a runner.Tier-backed cache to reuse results
	// across invocations and with the smtd daemon.
	Cache *runner.Cache
}

// Collect runs every experiment needed by the claim set. With the zero
// Options this regenerates the complete evaluation (several minutes of
// simulation serially; the cells of each figure fan out over
// opt.Workers, and one result cache spans the whole collection so cells
// shared between figures — solo stream baselines, Figure 1 duos
// reappearing as Figure 2 diagonals, repeated kernel configurations —
// simulate once).
func Collect(ctx context.Context, opt Options) (*Data, error) {
	d := &Data{}
	var err error
	cache := opt.Cache
	if cache == nil {
		cache = runner.NewCache()
	}
	eopt := experiments.Options{Workers: opt.Workers, Cache: cache}

	if !opt.SkipStreams {
		if d.Fig1, err = experiments.Fig1(ctx, eopt, experiments.StreamMachineConfig(), experiments.Fig1Kinds()); err != nil {
			return nil, fmt.Errorf("report: fig1: %w", err)
		}
		if d.Fig2a, err = experiments.Fig2a(ctx, eopt, experiments.StreamMachineConfig()); err != nil {
			return nil, fmt.Errorf("report: fig2a: %w", err)
		}
		if d.Fig2b, err = experiments.Fig2b(ctx, eopt, experiments.StreamMachineConfig()); err != nil {
			return nil, fmt.Errorf("report: fig2b: %w", err)
		}
	}

	mmSizes := opt.MMSizes
	if mmSizes == nil {
		mmSizes = experiments.MMSizes()
	}
	luSizes := opt.LUSizes
	if luSizes == nil {
		luSizes = experiments.LUSizes()
	}
	d.MMLabel = fmt.Sprintf("N=%d", mmSizes[len(mmSizes)-1])
	d.LULabel = fmt.Sprintf("N=%d", luSizes[len(luSizes)-1])

	if d.MM, err = experiments.Fig3MM(ctx, eopt, mmSizes); err != nil {
		return nil, fmt.Errorf("report: fig3: %w", err)
	}
	if d.LU, err = experiments.Fig4LU(ctx, eopt, luSizes); err != nil {
		return nil, fmt.Errorf("report: fig4: %w", err)
	}
	if d.CG, err = experiments.Fig5CG(ctx, eopt); err != nil {
		return nil, fmt.Errorf("report: fig5 cg: %w", err)
	}
	if d.BT, err = experiments.Fig5BT(ctx, eopt); err != nil {
		return nil, fmt.Errorf("report: fig5 bt: %w", err)
	}
	if d.Table1, err = experiments.Table1(ctx, eopt); err != nil {
		return nil, fmt.Errorf("report: table1: %w", err)
	}

	if !opt.SkipAblations {
		if d.Sync, err = experiments.AblateSync(ctx, eopt); err != nil {
			return nil, fmt.Errorf("report: ablate sync: %w", err)
		}
		if d.Span, err = experiments.AblateSpan(ctx, eopt); err != nil {
			return nil, fmt.Errorf("report: ablate span: %w", err)
		}
		if d.Selective, err = experiments.SelectiveHaltLU(ctx, eopt, 64); err != nil {
			return nil, fmt.Errorf("report: selective halt: %w", err)
		}
	}
	return d, nil
}

// Verdict is one evaluated claim.
type Verdict struct {
	ID       string
	Claim    string
	Paper    string
	Measured string
	Pass     bool
	// Skipped marks claims whose data was not collected.
	Skipped bool
}

// relOf finds the mode's execution-time factor vs serial in a metrics
// list at the given label.
func relOf(ms []experiments.KernelMetrics, label string, mode kernels.Mode) (float64, bool) {
	serial, ok := experiments.SerialOf(ms, label)
	if !ok {
		return 0, false
	}
	for _, m := range ms {
		if m.Label == label && m.Mode == mode {
			return experiments.Relative(m, serial), true
		}
	}
	return 0, false
}

// missReduction computes the pfetch worker's miss reduction vs serial.
func missReduction(ms []experiments.KernelMetrics, label string) (float64, bool) {
	serial, ok := experiments.SerialOf(ms, label)
	if !ok || serial.L2ReadMissesWorker == 0 {
		return 0, false
	}
	for _, m := range ms {
		if m.Label == label && m.Mode == kernels.TLPPfetch {
			return 1 - float64(m.L2ReadMissesWorker)/float64(serial.L2ReadMissesWorker), true
		}
	}
	return 0, false
}

func fig1CPI(rows []experiments.Fig1Row, k streams.Kind, ilp streams.ILP, thr int) (float64, bool) {
	for _, r := range rows {
		if r.Stream == k && r.ILP == ilp && r.Threads == thr {
			return r.CPI, true
		}
	}
	return 0, false
}

func fig2Slowdown(cells []experiments.Fig2Cell, s, p streams.Kind, ilp streams.ILP) (float64, bool) {
	for _, c := range cells {
		if c.Subject == s && c.Partner == p && c.ILP == ilp {
			return c.Slowdown, true
		}
	}
	return 0, false
}

func table1Col(cols []experiments.Table1Column, kernel, mode string) (experiments.Table1Column, bool) {
	for _, c := range cols {
		if c.Kernel == kernel && c.Mode == mode {
			return c, true
		}
	}
	return experiments.Table1Column{}, false
}

// Evaluate scores the paper's claims against the collected data.
func Evaluate(d *Data) []Verdict {
	var out []Verdict
	add := func(id, claim, paper string, eval func() (string, bool, bool)) {
		measured, pass, have := eval()
		out = append(out, Verdict{
			ID: id, Claim: claim, Paper: paper,
			Measured: measured, Pass: pass, Skipped: !have,
		})
	}

	// --- Figure 1 claims.
	add("F1-fadd-flat", "fadd min-ILP CPI unchanged from 1 to 2 threads", "flat (net speedup)",
		func() (string, bool, bool) {
			solo, ok1 := fig1CPI(d.Fig1, streams.FAddS, streams.MinILP, 1)
			duo, ok2 := fig1CPI(d.Fig1, streams.FAddS, streams.MinILP, 2)
			if !ok1 || !ok2 {
				return "", false, false
			}
			return fmt.Sprintf("%.2f → %.2f", solo, duo), duo <= solo*1.1, true
		})
	add("F1-fadd-window", "splitting a 6-wide fadd window over 2 threads beats nothing", "1thr-maxILP fastest",
		func() (string, bool, bool) {
			soloMax, ok1 := fig1CPI(d.Fig1, streams.FAddS, streams.MaxILP, 1)
			duoMed, ok2 := fig1CPI(d.Fig1, streams.FAddS, streams.MedILP, 2)
			if !ok1 || !ok2 {
				return "", false, false
			}
			return fmt.Sprintf("agg %.2f vs %.2f ops/cyc", 2/duoMed, 1/soloMax),
				2/duoMed <= 1.1*(1/soloMax), true
		})
	add("F1-iload-tlp", "iload is the stream where HT favours TLP", "cumulative dual throughput wins",
		func() (string, bool, bool) {
			solo, ok1 := fig1CPI(d.Fig1, streams.ILoadS, streams.MinILP, 1)
			duo, ok2 := fig1CPI(d.Fig1, streams.ILoadS, streams.MinILP, 2)
			if !ok1 || !ok2 {
				return "", false, false
			}
			return fmt.Sprintf("%.2f vs %.2f ops/cyc", 2/duo, 1/solo), 2/duo > 1.2*(1/solo), true
		})

	// --- Figure 2 claims.
	add("F2-iadd-serial", "iadd×iadd co-execution ≈ serial execution", "≈100%",
		func() (string, bool, bool) {
			s, ok := fig2Slowdown(d.Fig2b, streams.IAddS, streams.IAddS, streams.MaxILP)
			if !ok {
				return "", false, false
			}
			return fmt.Sprintf("%.0f%%", s*100), s > 0.7, true
		})
	add("F2-fdiv-ilp", "fdiv×fdiv large and ILP-insensitive", "120–140% at all ILP",
		func() (string, bool, bool) {
			hi, ok1 := fig2Slowdown(d.Fig2a, streams.FDivS, streams.FDivS, streams.MaxILP)
			lo, ok2 := fig2Slowdown(d.Fig2a, streams.FDivS, streams.FDivS, streams.MinILP)
			if !ok1 || !ok2 {
				return "", false, false
			}
			return fmt.Sprintf("%.0f%% / %.0f%%", hi*100, lo*100),
				hi > 0.5 && lo > 0.5 && hi-lo < 0.7 && lo-hi < 0.7, true
		})
	add("F2-minilp-free", "min-ILP FP pairs co-exist perfectly (except fdiv×fdiv)", "≈0%",
		func() (string, bool, bool) {
			s, ok := fig2Slowdown(d.Fig2a, streams.FAddS, streams.FMulS, streams.MinILP)
			if !ok {
				return "", false, false
			}
			return fmt.Sprintf("%.0f%%", s*100), s < 0.25, true
		})

	// --- Figure 3 (MM).
	add("F3-no-speedup", "no HT speedup for MM in any mode", "serial fastest",
		func() (string, bool, bool) {
			worst := 0.0
			serial, ok := experiments.SerialOf(d.MM, d.MMLabel)
			if !ok {
				return "", false, false
			}
			best := 1e9
			for _, m := range d.MM {
				if m.Label != d.MMLabel || m.Mode == kernels.Serial {
					continue
				}
				r := experiments.Relative(m, serial)
				if r > worst {
					worst = r
				}
				if r < best {
					best = r
				}
			}
			return fmt.Sprintf("dual modes %.2f–%.2fx vs serial", best, worst), best > 0.95, true
		})
	add("F3-miss-cut", "MM prefetcher removes the worker's L2 misses", "≈82%",
		func() (string, bool, bool) {
			red, ok := missReduction(d.MM, d.MMLabel)
			if !ok {
				return "", false, false
			}
			return fmt.Sprintf("%.0f%%", red*100), red > 0.5, true
		})

	// --- Figure 4 (LU).
	add("F4-spr-bloat", "LU SPR slows 1.61–1.96x via prefetcher µop inflation", "≈2x µops, ≈2x time",
		func() (string, bool, bool) {
			r, ok := relOf(d.LU, d.LULabel, kernels.TLPPfetch)
			if !ok {
				return "", false, false
			}
			serial, _ := experiments.SerialOf(d.LU, d.LULabel)
			var pf experiments.KernelMetrics
			for _, m := range d.LU {
				if m.Label == d.LULabel && m.Mode == kernels.TLPPfetch {
					pf = m
				}
			}
			uopRatio := float64(pf.UopsRetired) / float64(serial.UopsRetired)
			return fmt.Sprintf("%.2fx time, %.2fx µops", r, uopRatio),
				r > 1.4 && uopRatio > 1.5, true
		})
	add("F4-miss-cut", "LU prefetcher removes the worker's L2 misses", "≈98%",
		func() (string, bool, bool) {
			red, ok := missReduction(d.LU, d.LULabel)
			if !ok {
				return "", false, false
			}
			return fmt.Sprintf("%.0f%%", red*100), red > 0.5, true
		})

	// --- Figure 5 (CG, BT).
	add("F5-cg-order", "CG: serial beats all dual-threaded methods; SPR clearly slower", "coarse 1.03x, pfetch 1.82x, hybrid 1.91x",
		func() (string, bool, bool) {
			if len(d.CG) == 0 {
				return "", false, false
			}
			label := d.CG[0].Label
			co, ok1 := relOf(d.CG, label, kernels.TLPCoarse)
			pf, ok2 := relOf(d.CG, label, kernels.TLPPfetch)
			hy, ok3 := relOf(d.CG, label, kernels.TLPPfetchWork)
			if !ok1 || !ok2 || !ok3 {
				return "", false, false
			}
			return fmt.Sprintf("coarse %.2fx, pfetch %.2fx, hybrid %.2fx", co, pf, hy),
				co > 0.9 && pf > 1.1 && hy > 1.02, true
		})
	add("F5-bt-speedup", "BT tlp-coarse is the one TLP speedup", "≈6% faster",
		func() (string, bool, bool) {
			if len(d.BT) == 0 {
				return "", false, false
			}
			r, ok := relOf(d.BT, d.BT[0].Label, kernels.TLPCoarse)
			if !ok {
				return "", false, false
			}
			return fmt.Sprintf("%.2fx (%.0f%% faster)", r, (1-r)*100), r < 1.0, true
		})

	// --- Table 1.
	add("T1-mm-logical", "MM spends ≈25% of instructions in ALU0-only logical ops", "≈25% on ALU0",
		func() (string, bool, bool) {
			col, ok := table1Col(d.Table1, "MM", "serial")
			if !ok {
				return "", false, false
			}
			return fmt.Sprintf("%.1f%% on ALU0", col.ALU0Share),
				col.ALU0Share > 20 && col.ALU0Share < 35, true
		})
	add("T1-bt-half", "BT threads execute exactly half the serial instructions", "perfect partitioning",
		func() (string, bool, bool) {
			ser, ok1 := table1Col(d.Table1, "BT", "serial")
			tlp, ok2 := table1Col(d.Table1, "BT", "tlp")
			if !ok1 || !ok2 {
				return "", false, false
			}
			ratio := float64(tlp.TotalInstr) / float64(ser.TotalInstr)
			return fmt.Sprintf("tlp/serial instr = %.3f", ratio),
				ratio > 0.49 && ratio < 0.52, true
		})
	add("T1-cg-overhead", "CG threads execute more than half the serial count", "parallelisation overhead",
		func() (string, bool, bool) {
			ser, ok1 := table1Col(d.Table1, "CG", "serial")
			tlp, ok2 := table1Col(d.Table1, "CG", "tlp")
			if !ok1 || !ok2 {
				return "", false, false
			}
			ratio := float64(tlp.TotalInstr) / float64(ser.TotalInstr)
			return fmt.Sprintf("tlp/serial instr = %.3f", ratio), ratio > 0.52, true
		})

	// --- Extension (the paper's conclusion conjecture).
	add("E1-inline-pf", "prefetch embodied in the working thread beats helper-thread SPR", "conclusion: best scheme",
		func() (string, bool, bool) {
			inline, ok1 := relOf(d.MM, d.MMLabel, kernels.SerialPrefetch)
			helper, ok2 := relOf(d.MM, d.MMLabel, kernels.TLPPfetch)
			if !ok1 || !ok2 {
				return "", false, false
			}
			return fmt.Sprintf("serial+pf %.2fx vs tlp-pfetch %.2fx", inline, helper),
				inline < helper && inline < 1.05, true
		})

	// --- Ablations.
	add("A1-pause", "pause-augmented spin beats aggressive spinning", "§3.1",
		func() (string, bool, bool) {
			var raw, pause uint64
			for _, r := range d.Sync {
				switch r.Variant {
				case "spin":
					raw = r.Metrics.Cycles
				case "spin+pause":
					pause = r.Metrics.Cycles
				}
			}
			if raw == 0 || pause == 0 {
				return "", false, false
			}
			return fmt.Sprintf("%d vs %d cycles", raw, pause), pause < raw, true
		})
	add("A1-halt", "halting frees the partitioned resources and beats spinning", "§3.1",
		func() (string, bool, bool) {
			var halt, pause uint64
			for _, r := range d.Sync {
				switch r.Variant {
				case "halt":
					halt = r.Metrics.Cycles
				case "spin+pause":
					pause = r.Metrics.Cycles
				}
			}
			if halt == 0 || pause == 0 {
				return "", false, false
			}
			return fmt.Sprintf("%d vs %d cycles", pause, halt), halt < pause, true
		})
	add("A2-span", "oversized precomputation spans lose prefetched lines to eviction", "span ≤ 1/2 L2 (§3.2)",
		func() (string, bool, bool) {
			if len(d.Span) < 2 {
				return "", false, false
			}
			first := d.Span[0].Metrics.L2ReadMissesWorker
			last := d.Span[len(d.Span)-1].Metrics.L2ReadMissesWorker
			return fmt.Sprintf("worker misses %d → %d across sweep", first, last), last > first*4, true
		})
	add("A3-selective", "selective halting: fewer spin µops without regression", "§3.1 methodology",
		func() (string, bool, bool) {
			b, p := d.Selective.Baseline, d.Selective.Planned
			if b.Cycles == 0 {
				return "", false, false
			}
			return fmt.Sprintf("spin µops %d → %d, cycles %d → %d", b.SpinUops, p.SpinUops, b.Cycles, p.Cycles),
				p.SpinUops < b.SpinUops && float64(p.Cycles) < 1.1*float64(b.Cycles), true
		})

	return out
}

// Format renders the verdict table.
func Format(vs []Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-4s %-58s %s\n", "claim", "ok?", "paper", "measured")
	pass, total := 0, 0
	for _, v := range vs {
		status := "PASS"
		if v.Skipped {
			status = "skip"
		} else if !v.Pass {
			status = "FAIL"
		} else {
			pass++
		}
		if !v.Skipped {
			total++
		}
		fmt.Fprintf(&b, "%-14s %-4s %-58s %s\n", v.ID, status,
			truncate(v.Claim+" ["+v.Paper+"]", 58), v.Measured)
	}
	fmt.Fprintf(&b, "\n%d/%d claims reproduced\n", pass, total)
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
