package report

import (
	"context"
	"strings"
	"testing"

	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
	"smtexplore/internal/streams"
)

// syntheticData builds a Data set with known values so Evaluate's claim
// logic is tested without minutes of simulation.
func syntheticData() *Data {
	mk := func(label string, mode kernels.Mode, cycles, missW, uops uint64) experiments.KernelMetrics {
		return experiments.KernelMetrics{
			Kernel: "x", Mode: mode, Label: label,
			Cycles: cycles, L2ReadMissesWorker: missW, L2ReadMissesBoth: missW * 2,
			UopsRetired: uops,
		}
	}
	return &Data{
		Fig1: []experiments.Fig1Row{
			{Stream: streams.FAddS, ILP: streams.MinILP, Threads: 1, CPI: 5},
			{Stream: streams.FAddS, ILP: streams.MinILP, Threads: 2, CPI: 5},
			{Stream: streams.FAddS, ILP: streams.MaxILP, Threads: 1, CPI: 1},
			{Stream: streams.FAddS, ILP: streams.MedILP, Threads: 2, CPI: 2},
			{Stream: streams.ILoadS, ILP: streams.MinILP, Threads: 1, CPI: 2.5},
			{Stream: streams.ILoadS, ILP: streams.MinILP, Threads: 2, CPI: 2.6},
		},
		Fig2a: []experiments.Fig2Cell{
			{Subject: streams.FDivS, Partner: streams.FDivS, ILP: streams.MaxILP, Slowdown: 1.0},
			{Subject: streams.FDivS, Partner: streams.FDivS, ILP: streams.MinILP, Slowdown: 1.0},
			{Subject: streams.FAddS, Partner: streams.FMulS, ILP: streams.MinILP, Slowdown: 0.05},
		},
		Fig2b: []experiments.Fig2Cell{
			{Subject: streams.IAddS, Partner: streams.IAddS, ILP: streams.MaxILP, Slowdown: 1.0},
		},
		MM: []experiments.KernelMetrics{
			mk("N=128", kernels.Serial, 1000, 1000, 100),
			mk("N=128", kernels.TLPCoarse, 1100, 900, 100),
			mk("N=128", kernels.TLPPfetch, 1180, 150, 120),
			mk("N=128", kernels.SerialPrefetch, 990, 200, 102),
		},
		LU: []experiments.KernelMetrics{
			mk("N=128", kernels.Serial, 1000, 500, 100),
			mk("N=128", kernels.TLPPfetch, 2000, 10, 190),
		},
		CG: []experiments.KernelMetrics{
			mk("cg", kernels.Serial, 1000, 400, 100),
			mk("cg", kernels.TLPCoarse, 1030, 300, 110),
			mk("cg", kernels.TLPPfetch, 1800, 100, 115),
			mk("cg", kernels.TLPPfetchWork, 1900, 500, 118),
		},
		BT: []experiments.KernelMetrics{
			mk("bt", kernels.Serial, 1000, 900, 100),
			mk("bt", kernels.TLPCoarse, 940, 850, 100),
		},
		Table1: []experiments.Table1Column{
			{Kernel: "MM", Mode: "serial", ALU0Share: 25.2, TotalInstr: 1000},
			{Kernel: "BT", Mode: "serial", TotalInstr: 1000},
			{Kernel: "BT", Mode: "tlp", TotalInstr: 500},
			{Kernel: "CG", Mode: "serial", TotalInstr: 1000},
			{Kernel: "CG", Mode: "tlp", TotalInstr: 560},
		},
		Sync: []experiments.AblationRow{
			{Variant: "spin", Metrics: experiments.KernelMetrics{Cycles: 1500}},
			{Variant: "spin+pause", Metrics: experiments.KernelMetrics{Cycles: 950}},
			{Variant: "halt", Metrics: experiments.KernelMetrics{Cycles: 830}},
		},
		Span: []experiments.AblationRow{
			{Variant: "small", Metrics: experiments.KernelMetrics{L2ReadMissesWorker: 10}},
			{Variant: "large", Metrics: experiments.KernelMetrics{L2ReadMissesWorker: 800}},
		},
		Selective: experiments.SelectiveHaltResult{
			Baseline: experiments.KernelMetrics{Cycles: 1000, SpinUops: 20000},
			Planned:  experiments.KernelMetrics{Cycles: 990, SpinUops: 2000},
		},
		MMLabel: "N=128",
		LULabel: "N=128",
	}
}

func TestEvaluateAllPassOnGoodData(t *testing.T) {
	vs := Evaluate(syntheticData())
	if len(vs) < 15 {
		t.Fatalf("only %d verdicts", len(vs))
	}
	for _, v := range vs {
		if v.Skipped {
			t.Errorf("%s skipped on complete data", v.ID)
		}
		if !v.Pass {
			t.Errorf("%s failed on shape-conforming data: %s", v.ID, v.Measured)
		}
	}
	out := Format(vs)
	if !strings.Contains(out, "claims reproduced") {
		t.Error("format missing summary line")
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("format shows failures:\n%s", out)
	}
}

func TestEvaluateDetectsShapeBreaks(t *testing.T) {
	d := syntheticData()
	// Break the BT speedup.
	d.BT[1].Cycles = 1200
	// Break the LU µop inflation.
	d.LU[1].UopsRetired = 100
	vs := Evaluate(d)
	failed := map[string]bool{}
	for _, v := range vs {
		if !v.Pass && !v.Skipped {
			failed[v.ID] = true
		}
	}
	if !failed["F5-bt-speedup"] {
		t.Error("broken BT speedup not detected")
	}
	if !failed["F4-spr-bloat"] {
		t.Error("broken LU µop inflation not detected")
	}
}

func TestEvaluateSkipsMissingData(t *testing.T) {
	d := syntheticData()
	d.Fig1 = nil
	d.Sync = nil
	vs := Evaluate(d)
	skipped := 0
	for _, v := range vs {
		if v.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("missing data not reported as skipped")
	}
	out := Format(vs)
	if !strings.Contains(out, "skip") {
		t.Error("format does not show skips")
	}
}

// TestCollectQuick exercises the real collection path on tiny instances.
func TestCollectQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("collection is slow")
	}
	d, err := Collect(context.Background(), Options{
		MMSizes:       []int{32},
		LUSizes:       []int{32},
		SkipStreams:   true,
		SkipAblations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MM) == 0 || len(d.Table1) == 0 {
		t.Fatal("collection returned empty data")
	}
	vs := Evaluate(d)
	if len(vs) == 0 {
		t.Fatal("no verdicts")
	}
}
