package syncprim

import (
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

func TestCellAllocDistinct(t *testing.T) {
	var a CellAlloc
	seen := map[isa.Cell]bool{isa.NoCell: true}
	for i := 0; i < 100; i++ {
		c := a.New()
		if seen[c] {
			t.Fatalf("cell %d handed out twice (or is NoCell)", c)
		}
		seen[c] = true
	}
}

func TestWaitKindStrings(t *testing.T) {
	for _, k := range []WaitKind{SpinPause, SpinRaw, HaltWait} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestFlagSignalling(t *testing.T) {
	var a CellAlloc
	f := NewFlag(&a)
	producer := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 200; i++ {
			e.ALU(isa.IAdd, isa.R(0), isa.R(1), isa.R(2))
		}
		f.Set(e, 7)
	})
	consumer := trace.Generate(func(e *trace.Emitter) {
		f.Wait(e, SpinPause, isa.CmpEQ, 7)
		e.ALU(isa.IAdd, isa.R(0), isa.R(1), isa.R(2))
	})
	m := smt.New(smt.DefaultConfig())
	m.LoadProgram(0, producer)
	m.LoadProgram(1, consumer)
	res, err := m.Run(5_000_000)
	if err != nil || !res.Completed {
		t.Fatalf("run: %v completed=%v", err, res.Completed)
	}
	if m.CellValue(f.Cell()) != 7 {
		t.Errorf("flag cell = %d, want 7", m.CellValue(f.Cell()))
	}
}

// barrierProgram emits rounds of work separated by barrier crossings, with
// each round's first instruction tagged so the test can observe ordering.
func barrierProgram(p *Participant, rounds, work int, tagBase isa.Tag) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		for r := 0; r < rounds; r++ {
			e.TaggedLoad(isa.F(0), uint64(r)*64, tagBase+isa.Tag(r))
			for w := 0; w < work; w++ {
				e.ALU(isa.FAdd, isa.F(1+w%4), isa.F(6), isa.F(7))
			}
			p.Arrive(e)
		}
	})
}

func TestBarrierLockstep(t *testing.T) {
	for _, kind := range []WaitKind{SpinPause, SpinRaw, HaltWait} {
		t.Run(kind.String(), func(t *testing.T) {
			var a CellAlloc
			b := NewBarrier(&a)
			const rounds = 5
			// Asymmetric work: context 1 finishes each round much sooner
			// and must wait at the barrier.
			p0 := barrierProgram(b.Join(0, kind), rounds, 400, 100)
			p1 := barrierProgram(b.Join(1, kind), rounds, 10, 200)

			type arrival struct {
				tid   int
				round int
				cycle uint64
			}
			var arrivals []arrival
			m := smt.New(smt.DefaultConfig())
			m.OnRetire(func(ri smt.RetireInfo) {
				if ri.Instr.Tag >= 100 && ri.Instr.Tag < 200 {
					arrivals = append(arrivals, arrival{ri.Tid, int(ri.Instr.Tag - 100), ri.Cycle})
				} else if ri.Instr.Tag >= 200 {
					arrivals = append(arrivals, arrival{ri.Tid, int(ri.Instr.Tag - 200), ri.Cycle})
				}
			})
			m.LoadProgram(0, p0)
			m.LoadProgram(1, p1)
			res, err := m.Run(50_000_000)
			if err != nil || !res.Completed {
				t.Fatalf("run: err=%v completed=%v", err, res.Completed)
			}

			// Lockstep property: round r+1 of either context begins only
			// after round r of *both* contexts began (barriers separate
			// the rounds; retirement order of the tagged loads witnesses
			// it).
			roundStart := map[int]map[int]uint64{0: {}, 1: {}}
			for _, ar := range arrivals {
				if _, dup := roundStart[ar.tid][ar.round]; !dup {
					roundStart[ar.tid][ar.round] = ar.cycle
				}
			}
			for r := 0; r+1 < rounds; r++ {
				for tid := 0; tid < 2; tid++ {
					next, ok1 := roundStart[tid][r+1]
					prev0, ok2 := roundStart[0][r]
					prev1, ok3 := roundStart[1][r]
					if !ok1 || !ok2 || !ok3 {
						t.Fatalf("missing round markers (r=%d tid=%d)", r, tid)
					}
					if next < prev0 || next < prev1 {
						t.Errorf("kind %v: context %d round %d started at %d before both round-%d starts (%d, %d)",
							kind, tid, r+1, next, r, prev0, prev1)
					}
				}
			}

			// Epoch cells record all crossings.
			cells := b.Cells()
			if m.CellValue(cells[0]) != rounds || m.CellValue(cells[1]) != rounds {
				t.Errorf("epochs = %d/%d, want %d/%d",
					m.CellValue(cells[0]), m.CellValue(cells[1]), rounds, rounds)
			}
		})
	}
}

func TestHaltBarrierHaltsEarlyArriver(t *testing.T) {
	var a CellAlloc
	b := NewBarrier(&a)
	const rounds = 3
	p0 := barrierProgram(b.Join(0, SpinPause), rounds, 3000, 100) // slow worker spins
	p1 := barrierProgram(b.Join(1, HaltWait), rounds, 5, 200)     // fast helper halts
	m := smt.New(smt.DefaultConfig())
	m.LoadProgram(0, p0)
	m.LoadProgram(1, p1)
	if res, err := m.Run(80_000_000); err != nil || !res.Completed {
		t.Fatalf("run: err=%v completed=%v", err, res.Completed)
	}
	c := m.Counters()
	if c.Get(perfmon.HaltedCycles, 1) == 0 {
		t.Error("early arriver never halted")
	}
	if got := c.Get(perfmon.HaltTransitions, 1); got != rounds {
		t.Errorf("halt transitions = %d, want %d", got, rounds)
	}
	if c.Get(perfmon.HaltedCycles, 0) != 0 {
		t.Error("spinning participant should never halt")
	}
}

func TestBarrierJoinValidation(t *testing.T) {
	var a CellAlloc
	b := NewBarrier(&a)
	defer func() {
		if recover() == nil {
			t.Fatal("Join(2) did not panic")
		}
	}()
	b.Join(2, SpinPause)
}

func TestArriveKindOverride(t *testing.T) {
	var a CellAlloc
	b := NewBarrier(&a)
	p0 := b.Join(0, SpinPause)
	p1 := b.Join(1, SpinPause)
	prog := func(p *Participant, haltRound int) trace.Program {
		return trace.Generate(func(e *trace.Emitter) {
			for r := 0; r < 3; r++ {
				e.ALU(isa.IAdd, isa.R(0), isa.R(1), isa.R(2))
				if r == haltRound {
					p.ArriveKind(e, HaltWait)
				} else {
					p.Arrive(e)
				}
			}
		})
	}
	m := smt.New(smt.DefaultConfig())
	m.LoadProgram(0, prog(p0, -1))
	m.LoadProgram(1, prog(p1, 1))
	if res, err := m.Run(50_000_000); err != nil || !res.Completed {
		t.Fatalf("run: err=%v completed=%v", err, res.Completed)
	}
	if p0.Epoch() != 3 || p1.Epoch() != 3 {
		t.Errorf("epochs %d/%d, want 3/3", p0.Epoch(), p1.Epoch())
	}
}

func TestPlanFromProfile(t *testing.T) {
	profile := map[isa.Cell]uint64{
		1: 50_000, // long wait → halt
		2: 100,    // short wait → base
		3: 10_000, // exactly at threshold → halt
	}
	plan := PlanFromProfile(profile, 10_000, SpinPause)
	if plan[1] != HaltWait {
		t.Errorf("cell 1 (50k cycles) planned %v, want halt", plan[1])
	}
	if plan[2] != SpinPause {
		t.Errorf("cell 2 (100 cycles) planned %v, want spin+pause", plan[2])
	}
	if plan[3] != HaltWait {
		t.Errorf("cell 3 (at threshold) planned %v, want halt", plan[3])
	}
	if len(plan) != 3 {
		t.Errorf("plan has %d entries", len(plan))
	}
}

func TestArrivePlannedUsesPlan(t *testing.T) {
	var a CellAlloc
	b := NewBarrier(&a)
	p0 := b.Join(0, SpinPause)
	p1 := b.Join(1, SpinPause)
	// Plan: participant 1's wait cell → halt.
	plan := Plan{p1.WaitCell(): HaltWait}

	prog := func(p *Participant) trace.Program {
		return trace.Generate(func(e *trace.Emitter) {
			e.ALU(isa.IAdd, isa.R(0), isa.R(1), isa.R(2))
			p.ArrivePlanned(e, plan)
		})
	}
	ins1 := trace.Collect(prog(b.Join(1, SpinPause)))
	foundHalt := false
	for _, in := range ins1 {
		if in.Op == isa.HaltWait {
			foundHalt = true
		}
	}
	if !foundHalt {
		t.Error("planned participant did not emit a halt wait")
	}
	ins0 := trace.Collect(prog(b.Join(0, SpinPause)))
	for _, in := range ins0 {
		if in.Op == isa.HaltWait {
			t.Error("unplanned participant emitted a halt wait")
		}
	}
	_ = p0
}

func TestWaitCellIsSiblings(t *testing.T) {
	var a CellAlloc
	b := NewBarrier(&a)
	cells := b.Cells()
	if b.Join(0, SpinPause).WaitCell() != cells[1] {
		t.Error("participant 0 should wait on cell 1")
	}
	if b.Join(1, SpinPause).WaitCell() != cells[0] {
		t.Error("participant 1 should wait on cell 0")
	}
}
