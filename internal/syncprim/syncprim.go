// Package syncprim provides the user-level synchronisation primitives of
// the paper (§3.1) as instruction-stream builders: shared flags, spin-wait
// loops with and without the pause hint, halt-based long-duration waits
// that relinquish the logical processor's statically partitioned resources,
// and two-participant sense-reversing barriers in spin and halt flavours.
//
// Primitives operate on synchronisation cells — simulated shared words
// updated at store retirement — and therefore compose with any
// trace.Program. The barrier implementation generalises the paper's
// sense-reversing construction with per-participant arrival epochs: a
// participant publishes its arrival count and waits until its sibling's
// count reaches the same epoch, which is reuse-safe without a reset phase.
package syncprim

import (
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

// WaitKind selects how a primitive waits on a condition.
type WaitKind uint8

const (
	// SpinPause is the paper's recommended spin-wait loop with the pause
	// instruction embedded: it de-pipelines the loop, limiting the shared
	// resources the waiting context consumes.
	SpinPause WaitKind = iota
	// SpinRaw is an aggressive spin-wait without pause; it floods the
	// front end and issue ports — the behaviour §3.1 warns against.
	SpinRaw
	// HaltWait puts the logical processor into the halted state via the
	// paper's kernel extensions: its partitioned resources recombine for
	// the sibling, and wake-up (IPI) pays a large transition cost. Meant
	// for long-duration waits.
	HaltWait
)

func (k WaitKind) String() string {
	switch k {
	case SpinPause:
		return "spin+pause"
	case SpinRaw:
		return "spin"
	case HaltWait:
		return "halt"
	}
	return fmt.Sprintf("waitkind(%d)", uint8(k))
}

// emitWait emits the chosen wait flavour on cell cmp val.
func emitWait(e *trace.Emitter, k WaitKind, cell isa.Cell, cmp isa.CmpKind, val int64) {
	switch k {
	case SpinPause:
		e.Spin(cell, cmp, val)
	case SpinRaw:
		e.RawSpin(cell, cmp, val)
	case HaltWait:
		e.HaltUntil(cell, cmp, val)
	default:
		panic(fmt.Sprintf("syncprim: unknown wait kind %d", uint8(k)))
	}
}

// CellAlloc hands out distinct synchronisation cells. Cell 0 is reserved
// (isa.NoCell), so allocation starts at 1. The zero value is ready to use.
type CellAlloc struct {
	next isa.Cell
}

// New returns a fresh cell.
func (a *CellAlloc) New() isa.Cell {
	a.next++
	return a.next
}

// Flag is a single shared word used for one-way signalling.
type Flag struct {
	cell isa.Cell
}

// NewFlag allocates a flag from a.
func NewFlag(a *CellAlloc) Flag { return Flag{cell: a.New()} }

// Cell exposes the underlying cell (for Machine.SetCell initialisation and
// test inspection).
func (f Flag) Cell() isa.Cell { return f.cell }

// Set emits a flag store publishing val.
func (f Flag) Set(e *trace.Emitter, val int64) {
	e.SetFlag(f.cell, val, isa.CellAddr(f.cell))
}

// Wait emits a wait of kind k until the flag satisfies cmp val.
func (f Flag) Wait(e *trace.Emitter, k WaitKind, cmp isa.CmpKind, val int64) {
	emitWait(e, k, f.cell, cmp, val)
}

// Barrier is a two-participant sense-reversing barrier. Each participant
// owns an arrival cell holding its epoch count; crossing the barrier means
// publishing one's own epoch and waiting until the sibling's epoch catches
// up. Participants may use different wait flavours — the paper's selective
// scheme gives the (usually early) precomputation thread a halt-based wait
// on long-duration barriers while the computation thread keeps a cheap
// spin.
type Barrier struct {
	cells [2]isa.Cell
}

// NewBarrier allocates a two-participant barrier from a.
func NewBarrier(a *CellAlloc) *Barrier {
	return &Barrier{cells: [2]isa.Cell{a.New(), a.New()}}
}

// Cells exposes the two arrival cells (tests and diagnostics).
func (b *Barrier) Cells() [2]isa.Cell { return b.cells }

// Participant is one side of a barrier, carrying its arrival epoch. The
// two participants must be obtained with distinct ids and used by distinct
// contexts' programs.
type Participant struct {
	b     *Barrier
	me    int
	kind  WaitKind
	epoch int64
}

// Join binds participant id (0 or 1) with wait flavour k.
func (b *Barrier) Join(id int, k WaitKind) *Participant {
	if id != 0 && id != 1 {
		panic(fmt.Sprintf("syncprim: barrier participant id %d", id))
	}
	return &Participant{b: b, me: id, kind: k}
}

// Epoch returns the number of barrier crossings emitted so far.
func (p *Participant) Epoch() int64 { return p.epoch }

// Arrive emits one barrier crossing: publish the new epoch, then wait for
// the sibling to reach it.
func (p *Participant) Arrive(e *trace.Emitter) {
	p.epoch++
	own := p.b.cells[p.me]
	e.SetFlag(own, p.epoch, isa.CellAddr(own))
	emitWait(e, p.kind, p.b.cells[1-p.me], isa.CmpGE, p.epoch)
}

// ArriveKind is Arrive with a per-crossing wait flavour override, used by
// the paper's selective halting: only "long duration" barriers embed the
// halt machinery.
func (p *Participant) ArriveKind(e *trace.Emitter, k WaitKind) {
	p.epoch++
	own := p.b.cells[p.me]
	e.SetFlag(own, p.epoch, isa.CellAddr(own))
	emitWait(e, k, p.b.cells[1-p.me], isa.CmpGE, p.epoch)
}

// WaitCell returns the cell this participant waits on when crossing the
// barrier (its sibling's arrival cell) — the key into a Machine's
// WaitProfile and into a Plan.
func (p *Participant) WaitCell() isa.Cell { return p.b.cells[1-p.me] }

// ArrivePlanned crosses the barrier using the flavour the plan assigns to
// this participant's wait cell (falling back to the participant's default
// kind) — the paper's selective-halting execution step.
func (p *Participant) ArrivePlanned(e *trace.Emitter, plan Plan) {
	k := p.kind
	if plan != nil {
		if planned, ok := plan[p.WaitCell()]; ok {
			k = planned
		}
	}
	p.ArriveKind(e, k)
}

// Plan assigns a wait flavour per synchronisation cell.
type Plan map[isa.Cell]WaitKind

// PlanFromProfile implements the paper's §3.1 methodology: given the
// measured per-cell wait cycles of a profiling run, waits that consumed
// at least threshold cycles in total are marked for halt-based waiting
// (they are "long duration" — the resources the waiter would burn
// spinning, or hold partitioned, outweigh the halt/IPI transition cost);
// everything else keeps the base flavour.
func PlanFromProfile(profile map[isa.Cell]uint64, threshold uint64, base WaitKind) Plan {
	plan := make(Plan, len(profile))
	for cell, cycles := range profile {
		if cycles >= threshold {
			plan[cell] = HaltWait
		} else {
			plan[cell] = base
		}
	}
	return plan
}
