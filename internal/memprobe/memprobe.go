// Package memprobe characterises the simulated memory hierarchy the way
// lmbench-style microbenchmarks characterise real machines: a dependent
// pointer-chase walk measures the load-to-use latency of each cache level,
// and an independent streaming walk measures sustainable bandwidth. The
// probes double as validation of the simulator's memory model (the
// latency plateaus must land on the configured L1/L2/DRAM costs) and as
// examples of dependence-driven program generation.
package memprobe

import (
	"fmt"
	"math/rand"
	"strings"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

// ChaseProgram builds a dependent pointer-chase over a region of the
// given size: loads visit the region's cache lines in a pseudo-random
// permutation cycle, and each load's issue depends on the previous load's
// result (the destination register feeds the next source), so the chain
// exposes the full load-to-use latency of wherever the region lives.
// Every hop carries tag, letting a measurement isolate the phase.
func ChaseProgram(base uint64, sizeBytes int, hops int, seed int64, tag isa.Tag) trace.Program {
	lines := sizeBytes / 64
	if lines < 2 {
		panic(fmt.Sprintf("memprobe: region %d too small to chase", sizeBytes))
	}
	perm := cyclePermutation(lines, seed)
	return trace.Generate(func(e *trace.Emitter) {
		reg := isa.R(1)
		idx := 0
		for h := 0; h < hops && !e.Stopped(); h++ {
			// The next hop's load depends on this one's destination: a
			// serialised chain, exactly like p = p->next.
			e.Emit(isa.Instr{Op: isa.Load, Dst: reg, Src1: reg,
				Addr: base + uint64(perm[idx])*64, Tag: tag})
			idx = perm[idx]
		}
	})
}

// cyclePermutation returns a single-cycle permutation of [0,n) so the
// chase visits every line before repeating (no short cycles that would
// let a tiny subset cache-hit).
func cyclePermutation(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	next := make([]int, n)
	for i := 0; i < n; i++ {
		next[order[i]] = order[(i+1)%n]
	}
	return next
}

// StreamProgram builds an independent sequential walk over the region:
// loads carry no dependences, so throughput is bounded by the load port
// and the memory system's parallelism — a bandwidth probe.
func StreamProgram(base uint64, sizeBytes int, accesses int) trace.Program {
	lines := sizeBytes / 64
	if lines < 1 {
		panic(fmt.Sprintf("memprobe: region %d too small to stream", sizeBytes))
	}
	return trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < accesses && !e.Stopped(); i++ {
			e.Load(isa.F(i%8), base+uint64(i%lines)*64)
		}
	})
}

// LatencyPoint is one region-size measurement.
type LatencyPoint struct {
	SizeBytes int
	// CyclesPerHop is the average dependent-load latency.
	CyclesPerHop float64
	// L1MissRate and L2MissRate locate the region in the hierarchy.
	L1MissRate float64
	L2MissRate float64
}

// Phase tags distinguishing the warm-up pass from the measured chase.
const (
	tagWarmup isa.Tag = 900
	tagProbe  isa.Tag = 901
)

// LatencySweep chases regions of each size and reports the load-to-use
// latency plateau per size. A warm-up pass first walks the whole region
// (so it is resident wherever it fits); counters are snapshotted when the
// first measured hop retires, excluding the warm-up from the average.
func LatencySweep(mcfg smt.Config, sizes []int, hops int) ([]LatencyPoint, error) {
	var out []LatencyPoint
	for i, size := range sizes {
		base := 0x4000_0000 + uint64(i)<<24
		m := smt.New(mcfg)
		var startSnap perfmon.Snapshot
		started := false
		m.OnRetire(func(ri smt.RetireInfo) {
			if !started && ri.Instr.Tag == tagProbe {
				started = true
				startSnap = m.Counters().Snapshot()
			}
		})
		m.LoadProgram(0, trace.Concat(
			ChaseProgram(base, size, size/64, 42, tagWarmup),
			ChaseProgram(base, size, hops, 42, tagProbe),
		))
		if _, err := m.Run(2_000_000_000); err != nil {
			return nil, fmt.Errorf("memprobe: size %d: %w", size, err)
		}
		if !started {
			return nil, fmt.Errorf("memprobe: size %d never reached the probe phase", size)
		}
		d := m.Counters().Snapshot().Delta(startSnap)
		instr := d.Get(perfmon.InstrRetired, 0)
		if instr == 0 {
			return nil, fmt.Errorf("memprobe: size %d retired nothing in the probe phase", size)
		}
		ts := m.Hierarchy().Thread(0)
		out = append(out, LatencyPoint{
			SizeBytes:    size,
			CyclesPerHop: float64(d.Get(perfmon.Cycles, 0)) / float64(instr),
			L1MissRate:   float64(ts.L1Misses) / float64(ts.Accesses),
			L2MissRate:   float64(ts.L2Misses) / float64(ts.Accesses),
		})
	}
	return out, nil
}

// BandwidthPoint is one streaming measurement.
type BandwidthPoint struct {
	SizeBytes int
	// BytesPerCycle is the sustained streaming rate (8 bytes per load).
	BytesPerCycle float64
	// Threads is the number of contexts streaming concurrently.
	Threads int
}

// BandwidthSweep streams regions of each size with one and with two
// contexts, exposing the shared L2 port and MSHR limits the paper's
// dual-thread kernels contend on.
func BandwidthSweep(mcfg smt.Config, sizes []int, accesses int) ([]BandwidthPoint, error) {
	var out []BandwidthPoint
	for _, size := range sizes {
		for threads := 1; threads <= 2; threads++ {
			m := smt.New(mcfg)
			for t := 0; t < threads; t++ {
				m.LoadProgram(t, StreamProgram(0x5000_0000+uint64(t)<<26, size, accesses))
			}
			if _, err := m.Run(2_000_000_000); err != nil {
				return nil, fmt.Errorf("memprobe: stream %d/%d: %w", size, threads, err)
			}
			c := m.Counters()
			var loads uint64
			var cycles uint64
			for t := 0; t < threads; t++ {
				loads += c.Get(perfmon.InstrRetired, t)
				if cyc := c.Get(perfmon.Cycles, t); cyc > cycles {
					cycles = cyc
				}
			}
			if cycles == 0 {
				return nil, fmt.Errorf("memprobe: stream %d/%d ran zero cycles", size, threads)
			}
			out = append(out, BandwidthPoint{
				SizeBytes:     size,
				BytesPerCycle: 8 * float64(loads) / float64(cycles),
				Threads:       threads,
			})
		}
	}
	return out, nil
}

// FormatLatency renders a latency sweep.
func FormatLatency(points []LatencyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %10s %10s\n", "region", "cycles/hop", "L1 miss", "L2 miss")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %14.1f %9.0f%% %9.0f%%\n",
			sizeLabel(p.SizeBytes), p.CyclesPerHop, p.L1MissRate*100, p.L2MissRate*100)
	}
	return b.String()
}

// FormatBandwidth renders a bandwidth sweep.
func FormatBandwidth(points []BandwidthPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %14s\n", "region", "threads", "bytes/cycle")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %8d %14.2f\n", sizeLabel(p.SizeBytes), p.Threads, p.BytesPerCycle)
	}
	return b.String()
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
