package memprobe

import (
	"strings"
	"testing"
	"testing/quick"

	"smtexplore/internal/isa"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

func TestCyclePermutationSingleCycle(t *testing.T) {
	f := func(nSeed uint8, seed int64) bool {
		n := 2 + int(nSeed)%200
		next := cyclePermutation(n, seed)
		// Following next from 0 must visit all n elements before looping.
		seen := make([]bool, n)
		idx := 0
		for i := 0; i < n; i++ {
			if seen[idx] {
				return false
			}
			seen[idx] = true
			idx = next[idx]
		}
		return idx == 0 || seen[idx] // full cycle closes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestChaseProgramIsDependent(t *testing.T) {
	ins := trace.Collect(ChaseProgram(0x1000, 1024, 16, 7, 5))
	if len(ins) != 16 {
		t.Fatalf("hops = %d, want 16", len(ins))
	}
	for i, in := range ins {
		if in.Op != isa.Load {
			t.Fatalf("op %v", in.Op)
		}
		if in.Tag != 5 {
			t.Fatalf("hop %d tag %d, want 5", i, in.Tag)
		}
		if in.Src1 != in.Dst {
			t.Fatalf("hop %d not chained through the register", i)
		}
		if in.Addr < 0x1000 || in.Addr >= 0x1000+1024 {
			t.Fatalf("hop %d outside region: %#x", i, in.Addr)
		}
	}
	// All lines visited before repeating (single-cycle permutation).
	seen := map[uint64]bool{}
	for _, in := range ins {
		if seen[in.Addr] {
			t.Fatal("address repeated before covering the region")
		}
		seen[in.Addr] = true
	}
}

func TestLatencySweepFindsHierarchyPlateaus(t *testing.T) {
	cfg := smt.DefaultConfig()
	// L1 8KB, L2 512KB: probe inside L1, inside L2, beyond L2.
	points, err := LatencySweep(cfg, []int{4 << 10, 64 << 10, 2 << 20}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2, mem := points[0], points[1], points[2]
	// Load-to-use in L1 ≈ the configured 2-cycle hit latency.
	if l1.CyclesPerHop < 1.5 || l1.CyclesPerHop > 4 {
		t.Errorf("L1 chase latency = %.1f, want ≈2", l1.CyclesPerHop)
	}
	// L2 plateau ≈ L1 + L2 latency (+ port occupancy): ≈20+.
	if l2.CyclesPerHop < 15 || l2.CyclesPerHop > 35 {
		t.Errorf("L2 chase latency = %.1f, want ≈20", l2.CyclesPerHop)
	}
	// Memory plateau ≈ L2 + 250.
	if mem.CyclesPerHop < 180 || mem.CyclesPerHop > 350 {
		t.Errorf("DRAM chase latency = %.1f, want ≈270", mem.CyclesPerHop)
	}
	if !(l1.CyclesPerHop < l2.CyclesPerHop && l2.CyclesPerHop < mem.CyclesPerHop) {
		t.Error("latency plateaus not monotone")
	}
	if l2.L1MissRate < 0.9 {
		t.Errorf("L2-sized chase L1 miss rate %.2f, want ≈1 (random walk)", l2.L1MissRate)
	}
}

func TestBandwidthSweepSaturatesSharedPort(t *testing.T) {
	cfg := smt.DefaultConfig()
	points, err := BandwidthSweep(cfg, []int{4 << 10}, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	var solo, duo float64
	for _, p := range points {
		if p.Threads == 1 {
			solo = p.BytesPerCycle
		} else {
			duo = p.BytesPerCycle
		}
	}
	// L1-resident streams: the single load port bounds both (8 B/cycle);
	// adding a second thread cannot raise aggregate bandwidth much.
	if solo < 6 {
		t.Errorf("solo L1 bandwidth %.2f B/cyc, want ≈8 (port bound)", solo)
	}
	if duo > solo*1.25 {
		t.Errorf("dual bandwidth %.2f exceeds solo %.2f: shared port not modelled", duo, solo)
	}
}

func TestProgramValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { ChaseProgram(0, 64, 4, 1, 0) }, // 1 line: too small
		func() { StreamProgram(0, 32, 4) },      // under a line
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("tiny region accepted")
				}
			}()
			fn()
		}()
	}
}

func TestFormatters(t *testing.T) {
	lat := FormatLatency([]LatencyPoint{{SizeBytes: 4 << 10, CyclesPerHop: 2.1, L1MissRate: 0.01}})
	if !strings.Contains(lat, "4KB") || !strings.Contains(lat, "2.1") {
		t.Errorf("latency format wrong:\n%s", lat)
	}
	bw := FormatBandwidth([]BandwidthPoint{{SizeBytes: 2 << 20, Threads: 2, BytesPerCycle: 1.25}})
	if !strings.Contains(bw, "2MB") || !strings.Contains(bw, "1.25") {
		t.Errorf("bandwidth format wrong:\n%s", bw)
	}
}
