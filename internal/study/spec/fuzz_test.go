package spec

import (
	"encoding/json"
	"testing"
)

// FuzzParseSpec hunts for inputs that crash the parser or break its
// invariants: a successful parse must yield a spec that re-validates,
// and whose canonical JSON form re-parses to the same hash (the
// idempotence the study engine's idempotency keys rest on).
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(validJSON))
	f.Add([]byte(`{"name":"t1","sweeps":[{"name":"t","kind":"harness","harnesses":["table1"]}]}`))
	f.Add([]byte(`{"name":"k","budget":{"cycles":10000000,"cells":5},"deadline":"5m","priority":3,` +
		`"sweeps":[{"name":"mm","kind":"kernel","kernels":["mm"],"sizes":[32,64],"modes":["serial","tlp-fine"]}]}`))
	f.Add([]byte(`{"name":"f2","sweeps":[{"name":"m","kind":"stream","table":"fig2",` +
		`"streams":["fadd","fmul"],"partners":["iadd"],"ilp":["min"]}]}`))
	f.Add([]byte("# Title\n\nprose\n\n```json\n{\"name\":\"md\",\"sweeps\":[{\"name\":\"s\",\"kind\":\"stream\",\"streams\":[\"iload\"]}]}\n```\n"))
	f.Add([]byte("```json\nnot json\n```\n"))
	f.Add([]byte(`{"name":"x"`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed spec fails Validate: %v\ninput: %q", err, data)
		}
		h := s.Hash()
		if h == "" {
			t.Fatalf("empty hash for %q", data)
		}
		canon, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal of parsed spec: %v", err)
		}
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanon: %s", err, canon)
		}
		if s2.Hash() != h {
			t.Fatalf("canonical round-trip changed the hash\ninput: %q", data)
		}
		for _, sw := range s.Sweeps {
			switch sw.EffectiveTable() {
			case TableFig1, TableFig2, TableKernel, TableText:
			default:
				t.Fatalf("valid spec with unknown effective table %q", sw.EffectiveTable())
			}
		}
	})
}
