// Package spec parses and validates declarative study specifications.
//
// A study spec names a set of sweeps — stream grids, kernel grids or
// whole named harnesses — plus scheduling hints (priority, deadline)
// and an admission budget. It is deliberately a plain data shape: the
// compile package lowers it into content-keyed cells, so everything
// here is checkable without running a single simulation.
//
// Specs are written either as bare JSON or as a Markdown document whose
// first ```json fenced code block holds the JSON (prose around the
// block is the study's human-readable motivation; a leading "# " line
// becomes the title when the JSON sets none).
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"smtexplore/internal/kernels"
	"smtexplore/internal/streams"
)

// Sweep kinds.
const (
	KindStream  = "stream"
	KindKernel  = "kernel"
	KindHarness = "harness"
)

// Table styles. Each sweep synthesizes one result table; the style
// picks the formatter (and therefore the cell grid the sweep needs).
const (
	// TableFig1 renders solo-vs-duo CPI per stream×ILP, byte-identical
	// to `streams -fig 1` when the sweep mirrors the paper's grid.
	TableFig1 = "fig1"
	// TableFig2 renders the pairwise co-execution slowdown matrix,
	// byte-identical to `streams -fig 2a/2b/2c` for the paper's sets.
	TableFig2 = "fig2"
	// TableKernel renders the four-panel kernel figure, byte-identical
	// to `kernels -bench` for the paper's sweeps.
	TableKernel = "kernel"
	// TableText passes harness-cell output through verbatim (already
	// byte-identical to the corresponding CLI by construction).
	TableText = "text"
)

// Budget bounds what a study may simulate. Zero values mean unlimited.
// Warm cells (already in the store) are free; the budget admits cold
// work only.
type Budget struct {
	// Cycles caps the estimated simulated cycles of admitted cold cells.
	Cycles uint64 `json:"cycles,omitempty"`
	// Cells caps the number of admitted cold cells.
	Cells int `json:"cells,omitempty"`
}

// Sweep is one experiment grid of a study. Exactly the fields of its
// Kind are consulted.
type Sweep struct {
	// Name identifies the sweep (and its table file) within the study.
	Name string `json:"name"`
	// Kind is "stream", "kernel" or "harness".
	Kind string `json:"kind"`
	// Table picks the synthesis style; empty means the kind's default
	// (stream→fig1, kernel→kernel, harness→text).
	Table string `json:"table,omitempty"`
	// Title overrides the table heading for fig2/kernel tables.
	Title string `json:"title,omitempty"`

	// Streams (stream sweeps) are the swept stream kinds; for fig2
	// tables they are the matrix subjects.
	Streams []string `json:"streams,omitempty"`
	// Partners (fig2 tables) are the matrix partners; empty means the
	// subject set.
	Partners []string `json:"partners,omitempty"`
	// ILP lists the swept ILP degrees ("min", "med", "max"); empty
	// means all three, in the paper's order.
	ILP []string `json:"ilp,omitempty"`
	// Threads (fig1 tables) lists the co-executed copy counts; empty
	// means [1, 2].
	Threads []int `json:"threads,omitempty"`
	// Window is the measurement window in cycles (0 = harness default).
	Window uint64 `json:"window,omitempty"`

	// Kernels (kernel sweeps) names the kernel; kernel tables sweep
	// exactly one kernel (the vs-serial column is per-kernel).
	Kernels []string `json:"kernels,omitempty"`
	// Modes lists the swept execution modes; empty means every mode the
	// kernel implements.
	Modes []string `json:"modes,omitempty"`
	// Sizes lists the swept problem sizes (mm/lu require > 0; 0 keeps
	// the cg/bt instance default).
	Sizes []int `json:"sizes,omitempty"`

	// Harnesses (harness sweeps) names whole figures/tables to
	// regenerate ("fig1", "table1", …).
	Harnesses []string `json:"harnesses,omitempty"`

	// CellCost overrides the budget's per-cold-cell cycle estimate for
	// this sweep (stream cells default to their window; kernel and
	// harness cells to coarse built-in estimates).
	CellCost uint64 `json:"cellCost,omitempty"`
}

// Spec is a whole declarative study.
type Spec struct {
	// Name is the study's identity: its state directory and idempotency
	// scope. Lowercase slug.
	Name string `json:"name"`
	// Title heads the synthesized report; empty falls back to Name (or
	// the Markdown document's first heading).
	Title string `json:"title,omitempty"`
	// Description is carried into the report's metadata section.
	Description string `json:"description,omitempty"`
	// Priority and Deadline are passed to the job API when the study
	// runs against a daemon (deadline is a Go duration from admission).
	Priority int    `json:"priority,omitempty"`
	Deadline string `json:"deadline,omitempty"`
	// Budget bounds admitted cold work.
	Budget Budget `json:"budget,omitempty"`
	// Sweeps are the experiment grids, synthesized in order.
	Sweeps []Sweep `json:"sweeps"`
	// Claims adds the paper-claim verdict table (deltas vs. the
	// published numbers) to the report, evaluated over whatever the
	// study's sweeps reconstructed.
	Claims bool `json:"claims,omitempty"`
}

// Parse reads a spec from JSON or Markdown bytes: input whose first
// non-space byte is '{' is parsed as JSON; anything else is treated as
// Markdown and the first ```json fenced block is parsed instead.
// The returned spec is validated.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("spec: empty input")
	}
	var title string
	if trimmed[0] != '{' {
		var err error
		trimmed, title, err = extractFenced(trimmed)
		if err != nil {
			return nil, err
		}
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the JSON object")
	}
	if s.Title == "" {
		s.Title = title
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// extractFenced pulls the first ```json fenced block out of a Markdown
// document, plus the document's first "# " heading as a title fallback.
func extractFenced(md []byte) (block []byte, title string, err error) {
	lines := strings.Split(string(md), "\n")
	var body []string
	in := false
	for _, line := range lines {
		t := strings.TrimSpace(line)
		if !in {
			if title == "" && strings.HasPrefix(t, "# ") {
				// JSON strings are always valid UTF-8 (the decoder coerces
				// them); hold the Markdown path to the same, or the spec's
				// canonical form would not round-trip byte-stable.
				title = strings.ToValidUTF8(strings.TrimSpace(strings.TrimPrefix(t, "# ")), "�")
			}
			if t == "```json" || t == "```study" {
				in = true
			}
			continue
		}
		if t == "```" {
			return []byte(strings.Join(body, "\n")), title, nil
		}
		body = append(body, line)
	}
	if in {
		return nil, "", fmt.Errorf("spec: unterminated fenced block")
	}
	return nil, "", fmt.Errorf("spec: markdown input has no ```json fenced block")
}

// Hash is the spec's content identity: the hex sha256 of its canonical
// JSON form. Two textually different documents (Markdown vs bare JSON,
// reordered keys) that mean the same study hash the same.
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// slugOK reports whether a name is safe as a directory/file component.
func slugOK(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// ParseKind resolves a stream-kind name as the service does.
func ParseKind(name string) (streams.Kind, error) {
	for _, k := range streams.All() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown stream kind %q", name)
}

// ParseILP resolves an ILP-degree name ("min"/"med"/"max", the digit
// forms and the "minILP" long forms; empty means max, as in the paper's
// headline configuration).
func ParseILP(name string) (streams.ILP, error) {
	switch strings.TrimSuffix(name, "ILP") {
	case "", "max", "6":
		return streams.MaxILP, nil
	case "med", "3":
		return streams.MedILP, nil
	case "min", "1":
		return streams.MinILP, nil
	}
	return 0, fmt.Errorf("unknown ILP degree %q (want min, med or max)", name)
}

// ParseMode resolves an execution-mode name; empty means serial.
func ParseMode(name string) (kernels.Mode, error) {
	if name == "" {
		return kernels.Serial, nil
	}
	for _, m := range kernels.AllModes() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

// ILPName is the canonical short spelling compile and synth agree on.
func ILPName(ilp streams.ILP) string {
	switch ilp {
	case streams.MinILP:
		return "min"
	case streams.MedILP:
		return "med"
	}
	return "max"
}

// EffectiveTable is the sweep's table style with the kind default
// applied.
func (sw Sweep) EffectiveTable() string {
	if sw.Table != "" {
		return sw.Table
	}
	switch sw.Kind {
	case KindStream:
		return TableFig1
	case KindKernel:
		return TableKernel
	}
	return TableText
}

// EffectiveILP is the sweep's ILP list with the default (all three, in
// the paper's min→med→max order) applied.
func (sw Sweep) EffectiveILP() []string {
	if len(sw.ILP) > 0 {
		return sw.ILP
	}
	return []string{"min", "med", "max"}
}

// EffectiveThreads is the fig1 thread list with the default applied.
func (sw Sweep) EffectiveThreads() []int {
	if len(sw.Threads) > 0 {
		return sw.Threads
	}
	return []int{1, 2}
}

// EffectivePartners is the fig2 partner set with the default (the
// subject set) applied.
func (sw Sweep) EffectivePartners() []string {
	if len(sw.Partners) > 0 {
		return sw.Partners
	}
	return sw.Streams
}

// Validate checks everything knowable without running: slugs, kind and
// table names, stream/ILP/kernel/mode spellings, thread counts and the
// deadline duration. Harness names are validated by the compile step
// (which owns the service dependency).
func (s *Spec) Validate() error {
	if !slugOK(s.Name) {
		return fmt.Errorf("spec: name %q must be a non-empty lowercase slug (a-z, 0-9, -, _)", s.Name)
	}
	if s.Deadline != "" {
		if _, err := time.ParseDuration(s.Deadline); err != nil {
			return fmt.Errorf("spec: deadline: %w", err)
		}
	}
	if len(s.Sweeps) == 0 {
		return fmt.Errorf("spec: at least one sweep is required")
	}
	seen := map[string]bool{}
	for i, sw := range s.Sweeps {
		if !slugOK(sw.Name) {
			return fmt.Errorf("spec: sweep %d: name %q must be a non-empty lowercase slug", i, sw.Name)
		}
		if seen[sw.Name] {
			return fmt.Errorf("spec: duplicate sweep name %q", sw.Name)
		}
		seen[sw.Name] = true
		if err := sw.validate(); err != nil {
			return fmt.Errorf("spec: sweep %q: %w", sw.Name, err)
		}
	}
	return nil
}

func (sw Sweep) validate() error {
	table := sw.EffectiveTable()
	switch sw.Kind {
	case KindStream:
		if table != TableFig1 && table != TableFig2 {
			return fmt.Errorf("stream sweeps take table %q or %q, not %q", TableFig1, TableFig2, table)
		}
		if len(sw.Streams) == 0 {
			return fmt.Errorf("at least one stream is required")
		}
		for _, name := range sw.Streams {
			if _, err := ParseKind(name); err != nil {
				return err
			}
		}
		for _, name := range sw.Partners {
			if _, err := ParseKind(name); err != nil {
				return err
			}
		}
		for _, name := range sw.ILP {
			if _, err := ParseILP(name); err != nil {
				return err
			}
		}
		if table == TableFig1 && len(sw.Partners) > 0 {
			return fmt.Errorf("partners are a fig2-table field")
		}
		for _, n := range sw.EffectiveThreads() {
			if n < 1 || n > 2 {
				return fmt.Errorf("threads must be 1 or 2 (the machine has two contexts), got %d", n)
			}
		}
	case KindKernel:
		if table != TableKernel {
			return fmt.Errorf("kernel sweeps take table %q, not %q", TableKernel, table)
		}
		if len(sw.Kernels) != 1 {
			return fmt.Errorf("kernel sweeps take exactly one kernel (the vs-serial baseline is per-kernel); split into one sweep per kernel")
		}
		k := sw.Kernels[0]
		switch k {
		case "mm", "lu", "cg", "bt":
		default:
			return fmt.Errorf("unknown kernel %q (want mm, lu, cg or bt)", k)
		}
		for _, name := range sw.Modes {
			if _, err := ParseMode(name); err != nil {
				return err
			}
		}
		sizes := sw.Sizes
		if len(sizes) == 0 && (k == "mm" || k == "lu") {
			return fmt.Errorf("%s sweeps need explicit sizes > 0", k)
		}
		for _, n := range sizes {
			if n < 0 {
				return fmt.Errorf("negative size %d", n)
			}
			if n == 0 && (k == "mm" || k == "lu") {
				return fmt.Errorf("%s needs sizes > 0", k)
			}
		}
	case KindHarness:
		if table != TableText {
			return fmt.Errorf("harness sweeps take table %q, not %q", TableText, table)
		}
		if len(sw.Harnesses) == 0 {
			return fmt.Errorf("at least one harness name is required")
		}
	default:
		return fmt.Errorf("unknown kind %q (want stream, kernel or harness)", sw.Kind)
	}
	return nil
}
