package spec

import (
	"strings"
	"testing"
)

const validJSON = `{
  "name": "fig1",
  "sweeps": [
    {"name": "fig1", "kind": "stream",
     "streams": ["fadd", "iload"], "ilp": ["min", "max"]}
  ]
}`

func TestParseJSON(t *testing.T) {
	s, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "fig1" || len(s.Sweeps) != 1 {
		t.Fatalf("unexpected spec: %+v", s)
	}
	sw := s.Sweeps[0]
	if sw.EffectiveTable() != TableFig1 {
		t.Errorf("default table = %q, want fig1", sw.EffectiveTable())
	}
	if got := sw.EffectiveThreads(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("default threads = %v", got)
	}
}

func TestParseMarkdown(t *testing.T) {
	md := "# The Figure 1 study\n\nProse around the block.\n\n```json\n" +
		validJSON + "\n```\n\nTrailing prose.\n"
	s, err := Parse([]byte(md))
	if err != nil {
		t.Fatalf("Parse markdown: %v", err)
	}
	if s.Title != "The Figure 1 study" {
		t.Errorf("title from heading = %q", s.Title)
	}
	// The same study means the same hash regardless of document form.
	j, err := Parse([]byte(strings.Replace(validJSON, `"name": "fig1"`,
		`"name": "fig1", "title": "The Figure 1 study"`, 1)))
	if err != nil {
		t.Fatalf("Parse json: %v", err)
	}
	if s.Hash() != j.Hash() {
		t.Errorf("markdown and JSON forms of the same study hash differently")
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"no fence":         "# title\n\nno json here\n",
		"unterminated":     "```json\n{\"name\":\"x\"}\n",
		"bad name":         `{"name": "Has Spaces", "sweeps": [{"name":"s","kind":"harness","harnesses":["fig1"]}]}`,
		"no sweeps":        `{"name": "x", "sweeps": []}`,
		"dup sweep":        `{"name":"x","sweeps":[{"name":"a","kind":"harness","harnesses":["fig1"]},{"name":"a","kind":"harness","harnesses":["fig1"]}]}`,
		"bad kind":         `{"name":"x","sweeps":[{"name":"a","kind":"quantum"}]}`,
		"bad stream":       `{"name":"x","sweeps":[{"name":"a","kind":"stream","streams":["warp"]}]}`,
		"bad ilp":          `{"name":"x","sweeps":[{"name":"a","kind":"stream","streams":["fadd"],"ilp":["ultra"]}]}`,
		"bad threads":      `{"name":"x","sweeps":[{"name":"a","kind":"stream","streams":["fadd"],"threads":[3]}]}`,
		"fig1 partners":    `{"name":"x","sweeps":[{"name":"a","kind":"stream","streams":["fadd"],"partners":["fmul"]}]}`,
		"two kernels":      `{"name":"x","sweeps":[{"name":"a","kind":"kernel","kernels":["mm","lu"],"sizes":[32]}]}`,
		"mm no sizes":      `{"name":"x","sweeps":[{"name":"a","kind":"kernel","kernels":["mm"]}]}`,
		"bad mode":         `{"name":"x","sweeps":[{"name":"a","kind":"kernel","kernels":["cg"],"modes":["warp-speed"]}]}`,
		"bad deadline":     `{"name":"x","deadline":"soon","sweeps":[{"name":"a","kind":"harness","harnesses":["fig1"]}]}`,
		"unknown field":    `{"name":"x","cycles":5,"sweeps":[{"name":"a","kind":"harness","harnesses":["fig1"]}]}`,
		"trailing garbage": validJSON + `{"again": true}`,
	}
	for label, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: Parse accepted %q", label, in)
		}
	}
}

func TestILPRoundTrip(t *testing.T) {
	for _, name := range []string{"min", "med", "max", "1", "3", "6", "minILP", ""} {
		ilp, err := ParseILP(name)
		if err != nil {
			t.Fatalf("ParseILP(%q): %v", name, err)
		}
		back, err := ParseILP(ILPName(ilp))
		if err != nil || back != ilp {
			t.Errorf("ILPName(%v)=%q does not round-trip (%v, %v)", ilp, ILPName(ilp), back, err)
		}
	}
}

func TestHashStable(t *testing.T) {
	a, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("hash is not deterministic")
	}
	b.Budget.Cycles = 1
	if a.Hash() == b.Hash() {
		t.Errorf("hash ignores the budget")
	}
}
