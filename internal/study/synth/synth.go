// Package synth turns a compiled plan plus its cell results into the
// study's deliverables: result tables rendered by the same formatters
// the legacy CLIs use (so a sweep that mirrors a paper grid emits
// byte-identical text), and a self-contained Markdown report with the
// plan accounting, deltas vs. the paper's published numbers, and a
// limitations/verification appendix listing every skipped or failed
// cell.
package synth

import (
	"fmt"
	"strings"

	"smtexplore/internal/experiments"
	"smtexplore/internal/report"
	"smtexplore/internal/service"
	"smtexplore/internal/study/budget"
	"smtexplore/internal/study/compile"
	"smtexplore/internal/study/execute"
	"smtexplore/internal/study/spec"
)

// Table is one synthesized result table.
type Table struct {
	// Name is the sweep name (and the table's file stem).
	Name string
	// Text is the rendered table. For sweeps that mirror a legacy CLI
	// grid this is byte-identical to that CLI's stdout, including the
	// trailing blank line the streams/kernels commands print.
	Text string
}

// done reports whether a plan-aligned result slot holds a completed
// cell (skipped cells are zero-valued; failed ones carry their state).
func done(results []service.CellResult, idx int) (service.CellResult, bool) {
	if idx < 0 || idx >= len(results) {
		return service.CellResult{}, false
	}
	r := results[idx]
	return r, r.State == service.CellDone
}

// Tables renders one table per sweep from the plan-aligned results.
// Missing values (skipped or failed cells) render as zeros or absent
// rows; the report's appendix is where they are called out.
func Tables(p *compile.Plan, results []service.CellResult) ([]Table, error) {
	out := make([]Table, 0, len(p.Tables))
	for _, t := range p.Tables {
		var (
			text string
			err  error
		)
		switch t.Sweep.EffectiveTable() {
		case spec.TableFig1:
			text, err = fig1Table(t, results)
		case spec.TableFig2:
			text, err = fig2Table(t, results)
		case spec.TableKernel:
			text, err = kernelTable(t, results)
		case spec.TableText:
			text = textTable(t, results)
		default:
			err = fmt.Errorf("unknown table style %q", t.Sweep.EffectiveTable())
		}
		if err != nil {
			return nil, fmt.Errorf("synth: sweep %q: %w", t.Sweep.Name, err)
		}
		out = append(out, Table{Name: t.Sweep.Name, Text: text})
	}
	return out, nil
}

// fig1Rows reconstructs the Figure 1 row list in sweep enumeration
// order (duo CPI is the two contexts' average, as the harness reports).
func fig1Rows(t compile.TableNode, results []service.CellResult) ([]experiments.Fig1Row, error) {
	sw := t.Sweep
	var rows []experiments.Fig1Row
	for _, k := range sw.Streams {
		kind, err := spec.ParseKind(k)
		if err != nil {
			return nil, err
		}
		for _, ilpName := range sw.EffectiveILP() {
			ilp, err := spec.ParseILP(ilpName)
			if err != nil {
				return nil, err
			}
			for _, n := range sw.EffectiveThreads() {
				row := experiments.Fig1Row{Stream: kind, ILP: ilp, Threads: n}
				idx := t.Cells[fmt.Sprintf("%s|%s|%d", k, spec.ILPName(ilp), n)]
				if r, ok := done(results, idx); ok && len(r.CPI) == n && n > 0 {
					sum := 0.0
					for _, v := range r.CPI {
						sum += v
					}
					row.CPI = sum / float64(n)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func fig1Table(t compile.TableNode, results []service.CellResult) (string, error) {
	rows, err := fig1Rows(t, results)
	if err != nil {
		return "", err
	}
	return experiments.FormatFig1(rows) + "\n", nil
}

// fig2Cells reconstructs the pairwise slowdown cells in the Figure 2
// harness's enumeration order.
func fig2Cells(t compile.TableNode, results []service.CellResult) ([]experiments.Fig2Cell, error) {
	sw := t.Sweep
	var cells []experiments.Fig2Cell
	for _, ilpName := range sw.EffectiveILP() {
		ilp, err := spec.ParseILP(ilpName)
		if err != nil {
			return nil, err
		}
		short := spec.ILPName(ilp)
		for _, s := range sw.Streams {
			subj, err := spec.ParseKind(s)
			if err != nil {
				return nil, err
			}
			for _, p := range sw.EffectivePartners() {
				part, err := spec.ParseKind(p)
				if err != nil {
					return nil, err
				}
				c := experiments.Fig2Cell{Subject: subj, Partner: part, ILP: ilp}
				if r, ok := done(results, t.Cells[fmt.Sprintf("solo|%s|%s", s, short)]); ok && len(r.CPI) > 0 {
					c.SoloCPI = r.CPI[0]
				}
				if r, ok := done(results, t.Cells[fmt.Sprintf("duo|%s|%s|%s", s, p, short)]); ok && len(r.CPI) > 0 {
					c.CoCPI = r.CPI[0]
				}
				if c.SoloCPI > 0 {
					c.Slowdown = c.CoCPI/c.SoloCPI - 1
				}
				cells = append(cells, c)
			}
		}
	}
	return cells, nil
}

func fig2Table(t compile.TableNode, results []service.CellResult) (string, error) {
	cells, err := fig2Cells(t, results)
	if err != nil {
		return "", err
	}
	title := t.Sweep.Title
	if title == "" {
		title = "Co-execution matrix — " + t.Sweep.Name
	}
	return experiments.FormatFig2(title, cells) + "\n", nil
}

// kernelMetrics reconstructs the kernel sweep's metric rows (sizes
// outer, modes inner). Rows whose cell did not complete are absent —
// a zero-valued row would corrupt the vs-serial column.
func kernelMetrics(t compile.TableNode, results []service.CellResult) ([]experiments.KernelMetrics, error) {
	sw := t.Sweep
	kernel := sw.Kernels[0]
	sizes := sw.Sizes
	if len(sizes) == 0 {
		sizes = []int{0}
	}
	var ms []experiments.KernelMetrics
	for _, size := range sizes {
		modeNames := sw.Modes
		if len(modeNames) == 0 {
			modes, err := experiments.KernelModes(kernel, size)
			if err != nil {
				return nil, err
			}
			modeNames = make([]string, len(modes))
			for i, m := range modes {
				modeNames[i] = m.String()
			}
		}
		for _, modeName := range modeNames {
			mode, err := spec.ParseMode(modeName)
			if err != nil {
				return nil, err
			}
			if r, ok := done(results, t.Cells[fmt.Sprintf("%d|%s", size, mode)]); ok && r.Kernel != nil {
				ms = append(ms, *r.Kernel)
			}
		}
	}
	return ms, nil
}

func kernelTable(t compile.TableNode, results []service.CellResult) (string, error) {
	ms, err := kernelMetrics(t, results)
	if err != nil {
		return "", err
	}
	title := t.Sweep.Title
	if title == "" {
		title = "Kernel sweep — " + t.Sweep.Name
	}
	return experiments.FormatKernelFigure(title, ms) + "\n", nil
}

// textTable passes harness output through verbatim, in sweep order.
func textTable(t compile.TableNode, results []service.CellResult) string {
	var b strings.Builder
	for _, h := range t.Sweep.Harnesses {
		if r, ok := done(results, t.Cells["text|"+h]); ok {
			b.WriteString(r.Text)
		}
	}
	return b.String()
}

// CollectData assembles whatever paper-claim inputs the study's sweeps
// reconstructed, for report.Evaluate. Claims whose inputs this study
// did not sweep evaluate as skipped — partial studies get partial
// verdict tables, never false failures.
func CollectData(p *compile.Plan, results []service.CellResult) (*report.Data, error) {
	d := &report.Data{}
	for _, t := range p.Tables {
		switch t.Sweep.EffectiveTable() {
		case spec.TableFig1:
			rows, err := fig1Rows(t, results)
			if err != nil {
				return nil, err
			}
			d.Fig1 = append(d.Fig1, rows...)
		case spec.TableFig2:
			cells, err := fig2Cells(t, results)
			if err != nil {
				return nil, err
			}
			// Route by stream class: an all-FP matrix feeds the Figure
			// 2(a) claims, an all-integer one 2(b).
			fp, in := classify(t.Sweep)
			switch {
			case fp && !in:
				d.Fig2a = append(d.Fig2a, cells...)
			case in && !fp:
				d.Fig2b = append(d.Fig2b, cells...)
			}
		case spec.TableKernel:
			ms, err := kernelMetrics(t, results)
			if err != nil {
				return nil, err
			}
			sizes := t.Sweep.Sizes
			label := ""
			if len(sizes) > 0 {
				label = fmt.Sprintf("N=%d", sizes[len(sizes)-1])
			}
			switch t.Sweep.Kernels[0] {
			case "mm":
				d.MM = append(d.MM, ms...)
				d.MMLabel = label
			case "lu":
				d.LU = append(d.LU, ms...)
				d.LULabel = label
			case "cg":
				d.CG = append(d.CG, ms...)
			case "bt":
				d.BT = append(d.BT, ms...)
			}
		}
	}
	return d, nil
}

// classify reports whether every swept stream is FP and whether every
// one is integer.
func classify(sw spec.Sweep) (allFP, allInt bool) {
	allFP, allInt = true, true
	check := func(names []string) {
		for _, n := range names {
			isFP := strings.HasPrefix(n, "f")
			allFP = allFP && isFP
			allInt = allInt && !isFP
		}
	}
	check(sw.Streams)
	check(sw.Partners)
	return allFP, allInt
}

// Input is everything the report needs.
type Input struct {
	Spec     *spec.Spec
	Plan     *compile.Plan
	Decision budget.Decision
	Outcome  *execute.Outcome
	// Results is plan-aligned (skipped cells zero-valued).
	Results []service.CellResult
	Tables  []Table
}

// Report renders the self-contained Markdown report. It is
// deliberately timestamp-free: the same study over the same store
// produces byte-identical reports, which is what makes report diffs
// reviewable.
func Report(in Input) string {
	var b strings.Builder
	s := in.Spec
	title := s.Title
	if title == "" {
		title = s.Name
	}
	fmt.Fprintf(&b, "# Study report — %s\n\n", title)
	if s.Description != "" {
		fmt.Fprintf(&b, "%s\n\n", strings.TrimSpace(s.Description))
	}
	fmt.Fprintf(&b, "- study: `%s` (spec sha256 `%s`)\n", s.Name, s.Hash()[:12])
	fmt.Fprintf(&b, "- backend: %s\n", in.Outcome.Backend)
	if s.Priority != 0 {
		fmt.Fprintf(&b, "- priority: %d\n", s.Priority)
	}
	if s.Deadline != "" {
		fmt.Fprintf(&b, "- deadline: %s\n", s.Deadline)
	}
	switch {
	case s.Budget.Cycles > 0 && s.Budget.Cells > 0:
		fmt.Fprintf(&b, "- budget: %d cycles, %d cold cells\n", s.Budget.Cycles, s.Budget.Cells)
	case s.Budget.Cycles > 0:
		fmt.Fprintf(&b, "- budget: %d cycles\n", s.Budget.Cycles)
	case s.Budget.Cells > 0:
		fmt.Fprintf(&b, "- budget: %d cold cells\n", s.Budget.Cells)
	default:
		fmt.Fprintf(&b, "- budget: unlimited\n")
	}

	fmt.Fprintf(&b, "\n## Plan\n\n")
	fmt.Fprintf(&b, "| sweep | kind | table | cells |\n|---|---|---|---|\n")
	for _, t := range in.Plan.Tables {
		fmt.Fprintf(&b, "| %s | %s | %s | %d |\n",
			t.Sweep.Name, t.Sweep.Kind, t.Sweep.EffectiveTable(), len(t.Cells))
	}
	fmt.Fprintf(&b, "\n%d grid points compiled to %d unique cells (%d deduplicated); %d warm in the store, %d cold admitted (~%d estimated cycles), %d skipped by the budget.\n",
		in.Plan.Requested, len(in.Plan.Cells), in.Plan.Requested-len(in.Plan.Cells),
		len(in.Decision.Warm), in.Decision.ColdCells, in.Decision.EstimatedCycles,
		len(in.Decision.Skipped))

	fmt.Fprintf(&b, "\n## Results\n")
	for _, t := range in.Tables {
		fmt.Fprintf(&b, "\n### %s\n\n```text\n%s```\n", t.Name, ensureNL(t.Text))
	}

	if s.Claims {
		fmt.Fprintf(&b, "\n## Deltas vs. the paper\n\n")
		d, err := CollectData(in.Plan, in.Results)
		if err != nil {
			fmt.Fprintf(&b, "claim evaluation unavailable: %v\n", err)
		} else {
			fmt.Fprintf(&b, "```text\n%s```\n", ensureNL(report.Format(report.Evaluate(d))))
		}
	}

	fmt.Fprintf(&b, "\n## Limitations and verification\n\n")
	if len(in.Decision.Skipped) == 0 {
		fmt.Fprintf(&b, "- skipped cells: none — the budget admitted the whole plan.\n")
	} else {
		fmt.Fprintf(&b, "- skipped cells (%d):\n", len(in.Decision.Skipped))
		for _, sk := range in.Decision.Skipped {
			fmt.Fprintf(&b, "  - `%s`: %s\n", sk.Label, sk.Reason)
		}
	}
	failed := 0
	for _, r := range in.Results {
		if r.State == service.CellFailed || r.State == service.CellCancelled {
			failed++
		}
	}
	if failed == 0 {
		fmt.Fprintf(&b, "- failed cells: none.\n")
	} else {
		fmt.Fprintf(&b, "- failed cells (%d):\n", failed)
		for _, r := range in.Results {
			if r.State == service.CellFailed || r.State == service.CellCancelled {
				fmt.Fprintf(&b, "  - `%s` (%s): %s\n", r.Label, r.State, firstLine(r.Error))
			}
		}
	}
	if in.Outcome.Simulated >= 0 {
		fmt.Fprintf(&b, "- cold simulations this run: %d (warm cells were served from the store).\n", in.Outcome.Simulated)
	} else {
		fmt.Fprintf(&b, "- cold simulations this run: unknown (no store visibility from this backend).\n")
	}
	for _, n := range in.Outcome.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	fmt.Fprintf(&b, "- budget costs are admission estimates (stream cells are exact windows; kernel/harness cells use coarse per-cell guesses), not a cycle meter.\n")
	fmt.Fprintf(&b, "- tables whose sweep mirrors a paper grid are rendered by the legacy formatters and are byte-identical to the corresponding CLI (enforced for Fig-1/Table-1 by the study-smoke CI job).\n")
	return b.String()
}

func ensureNL(s string) string {
	if s == "" || strings.HasSuffix(s, "\n") {
		return s
	}
	return s + "\n"
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
