// Package budget decides which of a compiled plan's cells a study may
// actually run.
//
// Admission is cost-based and warm-aware: a cell whose content key is
// already in the store is free (executing it is a read, not a
// simulation), so only cold cells are charged against the study's cycle
// and cell budgets. Costs are the plan's per-cell estimates — exact for
// stream cells (a measurement runs its window and stops), coarse for
// kernel and harness cells — and over-budget cells are skipped with a
// recorded reason so the synthesized report can list them in its
// limitations appendix instead of failing silently.
package budget

import (
	"fmt"

	"smtexplore/internal/study/compile"
	"smtexplore/internal/study/spec"
)

// Prober answers "is this content key already materialized?" — the
// store seam. A nil Prober treats every keyed cell as cold.
type Prober interface {
	Has(key string) bool
}

// ProbeFunc adapts a closure to Prober.
type ProbeFunc func(key string) bool

func (f ProbeFunc) Has(key string) bool { return f(key) }

// Skip records one cell the budget refused, for the report appendix.
type Skip struct {
	Index  int    `json:"index"`
	Label  string `json:"label"`
	Reason string `json:"reason"`
}

// Decision is the admission outcome over one plan.
type Decision struct {
	// Admitted lists the cell indices to execute, in plan order
	// (includes the warm ones — executing them is how their results are
	// read back).
	Admitted []int
	// Warm is the subset of Admitted found in the store (cost 0).
	Warm []int
	// Skipped lists refused cells with reasons.
	Skipped []Skip
	// ColdCells and EstimatedCycles are the admitted cold work.
	ColdCells       int
	EstimatedCycles uint64
}

// Admit walks the plan in order, charging cold cells against the budget
// and skipping whatever no longer fits. First-fit in plan order keeps
// the decision deterministic and explainable ("everything before this
// line ran") rather than solving a packing problem.
func Admit(p *compile.Plan, b spec.Budget, probe Prober) Decision {
	var d Decision
	for i, c := range p.Cells {
		if c.Key != "" && probe != nil && probe.Has(c.Key) {
			d.Admitted = append(d.Admitted, i)
			d.Warm = append(d.Warm, i)
			continue
		}
		if b.Cells > 0 && d.ColdCells >= b.Cells {
			d.Skipped = append(d.Skipped, Skip{
				Index: i, Label: c.Spec.Label(),
				Reason: fmt.Sprintf("cell budget exhausted (%d cold cells admitted)", d.ColdCells),
			})
			continue
		}
		if b.Cycles > 0 && d.EstimatedCycles+c.Cost > b.Cycles {
			d.Skipped = append(d.Skipped, Skip{
				Index: i, Label: c.Spec.Label(),
				Reason: fmt.Sprintf("cycle budget exhausted (~%d of %d estimated cycles committed, cell needs ~%d)",
					d.EstimatedCycles, b.Cycles, c.Cost),
			})
			continue
		}
		d.Admitted = append(d.Admitted, i)
		d.ColdCells++
		d.EstimatedCycles += c.Cost
	}
	return d
}
