package budget

import (
	"strings"
	"testing"

	"smtexplore/internal/study/compile"
	"smtexplore/internal/study/spec"
)

func plan(t *testing.T, in string) *compile.Plan {
	t.Helper()
	s, err := spec.Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := compile.Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

const fig1Spec = `{"name":"f","sweeps":[{"name":"s","kind":"stream",
	"streams":["fadd","iadd"],"ilp":["min"],"window":1000}]}`

func TestAdmitUnlimited(t *testing.T) {
	p := plan(t, fig1Spec)
	d := Admit(p, spec.Budget{}, nil)
	if len(d.Admitted) != len(p.Cells) || len(d.Skipped) != 0 {
		t.Fatalf("unlimited budget skipped cells: %+v", d)
	}
	if d.ColdCells != len(p.Cells) || d.EstimatedCycles != uint64(len(p.Cells))*1000 {
		t.Errorf("cold accounting: %+v", d)
	}
}

func TestAdmitCycleBudget(t *testing.T) {
	p := plan(t, fig1Spec) // 4 cells à 1000 cycles
	d := Admit(p, spec.Budget{Cycles: 2500}, nil)
	if d.ColdCells != 2 || len(d.Skipped) != 2 {
		t.Fatalf("cycle budget admitted %d, skipped %d", d.ColdCells, len(d.Skipped))
	}
	if !strings.Contains(d.Skipped[0].Reason, "cycle budget exhausted") {
		t.Errorf("reason = %q", d.Skipped[0].Reason)
	}
	if d.Skipped[0].Label == "" {
		t.Errorf("skips must carry labels for the report appendix")
	}
}

func TestAdmitCellBudget(t *testing.T) {
	p := plan(t, fig1Spec)
	d := Admit(p, spec.Budget{Cells: 1}, nil)
	if d.ColdCells != 1 || len(d.Skipped) != 3 {
		t.Fatalf("cell budget admitted %d, skipped %d", d.ColdCells, len(d.Skipped))
	}
}

func TestAdmitWarmCellsAreFree(t *testing.T) {
	p := plan(t, fig1Spec)
	warm := map[string]bool{p.Cells[0].Key: true, p.Cells[2].Key: true}
	d := Admit(p, spec.Budget{Cycles: 2000}, ProbeFunc(func(k string) bool { return warm[k] }))
	// Two warm (free) + the budget covers the two remaining cold cells.
	if len(d.Admitted) != 4 || len(d.Skipped) != 0 {
		t.Fatalf("warm-aware admission: %+v", d)
	}
	if len(d.Warm) != 2 || d.ColdCells != 2 || d.EstimatedCycles != 2000 {
		t.Errorf("warm accounting: %+v", d)
	}
}
