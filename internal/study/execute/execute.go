// Package execute runs a compiled study's admitted cells through one of
// two interchangeable backends: an in-process local runner or a remote
// smtd (single daemon or cluster coordinator — the wire API is the
// same). The backend seam is what lets the study flow stay identical
// whether cells execute in this process or across a fleet.
package execute

import (
	"context"
	"fmt"
	"time"

	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
	"smtexplore/internal/service"
	"smtexplore/internal/store"
	"smtexplore/internal/study/budget"
)

// Options carries the study's scheduling hints into a backend run.
type Options struct {
	// Priority and Deadline map onto the job API's admission fields;
	// locally the deadline bounds the run's context.
	Priority int
	Deadline time.Duration
	// Workers bounds local parallelism (≤0 → GOMAXPROCS); remote
	// backends ignore it (the daemon has its own worker pool).
	Workers int
}

// Outcome is one backend run over a cell list.
type Outcome struct {
	// Results is index-aligned with the submitted cells.
	Results []service.CellResult
	// Simulated counts cold simulations actually performed: the local
	// backend measures store write-throughs (every cold keyed cell
	// writes exactly once); the remote backend reports the daemon's
	// cells-simulated delta, which includes any concurrent load. -1
	// means unknown.
	Simulated int
	// Backend names the executor for the report.
	Backend string
	// Notes are caveats for the report's verification appendix.
	Notes []string
}

// Backend executes cells. Run must return one result per submitted
// cell, in order, and never fail an entire batch because one cell
// failed — per-cell errors live in the results.
type Backend interface {
	Name() string
	Run(ctx context.Context, cells []service.CellSpec, opt Options) (*Outcome, error)
	// Probe exposes the backend's warm-result visibility for budget
	// admission; nil when the backend cannot see its store from here
	// (remote daemons dedupe on their side regardless).
	Probe() budget.Prober
}

// Local executes cells in-process through service.EvalCell — the exact
// cell semantics the daemon applies, minus the daemon.
type Local struct {
	// Cache is the run's single-flight result cache, normally tiered
	// onto Store.
	Cache *runner.Cache
	// Store is the disk tier shared with the CLI tools and daemons;
	// optional, but without it warm detection and simulation accounting
	// are unavailable.
	Store *store.Store
}

// NewLocal builds a local backend over an optional disk store.
func NewLocal(st *store.Store) *Local {
	cache := runner.NewCache()
	if st != nil {
		cache = cache.WithTier(st)
	}
	return &Local{Cache: cache, Store: st}
}

func (l *Local) Name() string { return "local" }

// Probe answers warm-key queries straight from the store.
func (l *Local) Probe() budget.Prober {
	if l.Store == nil {
		return nil
	}
	return budget.ProbeFunc(func(key string) bool {
		_, ok, err := l.Store.Get(key)
		return ok && err == nil
	})
}

func (l *Local) Run(ctx context.Context, cells []service.CellSpec, opt Options) (*Outcome, error) {
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	var before store.Stats
	if l.Store != nil {
		before = l.Store.Stats()
	}
	results, err := runner.Map(ctx, opt.Workers, cells, func(ctx context.Context, c service.CellSpec) (service.CellResult, error) {
		return service.EvalCell(ctx, c, experiments.Options{Workers: opt.Workers, Cache: l.Cache}), nil
	})
	if err != nil {
		// EvalCell never errors; only a cancelled context leaves cells
		// unstarted. Mark them so the report can say which ran.
		for i := range results {
			if results[i].State == "" {
				results[i] = service.CellResult{
					Label: cells[i].Label(), State: service.CellCancelled, Error: err.Error(),
				}
			}
		}
	}
	for i := range results {
		results[i].Index = i
	}
	out := &Outcome{Results: results, Backend: l.Name(), Simulated: -1}
	if l.Store != nil {
		out.Simulated = int(l.Store.Stats().Writes - before.Writes)
	}
	return out, nil
}

// Remote executes cells as one job against a daemon's HTTP API via the
// cluster's Worker client — a coordinator address works identically to
// a single smtd.
type Remote struct {
	// Worker is the daemon client (cluster.NewRemote or a test fake).
	Worker interface {
		Submit(ctx context.Context, req service.SubmitRequest, idemKey string) (string, error)
		Status(ctx context.Context, id string) (service.JobStatus, error)
		Result(ctx context.Context, id string) (service.JobResult, error)
		Stats(ctx context.Context) (service.Metrics, error)
	}
	// Poll is the status-poll cadence (0 → 250ms).
	Poll time.Duration
}

func (r *Remote) Name() string { return "daemon" }

// Probe is nil remotely: the daemon's store is not visible from here,
// and it deduplicates warm keys itself — admission just cannot credit
// them in advance.
func (r *Remote) Probe() budget.Prober { return nil }

func (r *Remote) Run(ctx context.Context, cells []service.CellSpec, opt Options) (*Outcome, error) {
	req := service.SubmitRequest{Cells: cells, Priority: opt.Priority}
	if opt.Deadline > 0 {
		req.Deadline = opt.Deadline.String()
	}
	before, statsErr := r.Worker.Stats(ctx)
	id, err := r.Worker.Submit(ctx, req, runner.Key("study-job", cells, opt.Priority, req.Deadline))
	if err != nil {
		return nil, fmt.Errorf("execute: submit: %w", err)
	}
	poll := r.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := r.Worker.Status(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("execute: status %s: %w", id, err)
		}
		if st.State == service.JobDone || st.State == service.JobFailed || st.State == service.JobCancelled {
			break
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
	res, err := r.Worker.Result(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("execute: result %s: %w", id, err)
	}
	out := &Outcome{Results: res.Cells, Backend: r.Name(), Simulated: -1}
	if after, err2 := r.Worker.Stats(ctx); err2 == nil && statsErr == nil {
		out.Simulated = int(after.CellsSimulated - before.CellsSimulated)
		out.Notes = append(out.Notes,
			"simulated-cell count is the daemon-wide delta over the study and includes any concurrent load")
	}
	return out, nil
}
