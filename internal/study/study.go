// Package study is the experiment-plan engine: it compiles a
// declarative study spec into a deduplicated DAG of content-keyed
// cells, admits them against the study's budget, executes them through
// an interchangeable backend (in-process runner or remote smtd), and
// synthesizes result tables plus a self-contained Markdown report.
//
// The flow is a fixed pipeline over narrow modules —
// spec → compile → budget → execute → synth — so backends, stores and
// report shapes evolve independently:
//
//	spec.Parse      JSON/Markdown document → validated Spec
//	compile.Compile Spec → deduped, content-keyed cell DAG
//	budget.Admit    cycle/cell admission, warm cells free
//	execute.Backend local runner or smtd/cluster job API
//	synth.Tables    legacy-formatter tables (byte-identical grids)
//	synth.Report    Markdown report + limitations appendix
package study

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"smtexplore/internal/service"
	"smtexplore/internal/study/budget"
	"smtexplore/internal/study/compile"
	"smtexplore/internal/study/execute"
	"smtexplore/internal/study/spec"
	"smtexplore/internal/study/synth"
)

// RunConfig configures one engine run.
type RunConfig struct {
	// Backend executes the admitted cells.
	Backend execute.Backend
	// Dir is the study state root; the run persists under Dir/<name>/
	// (study.json, report.md, tables/*.txt). Empty disables
	// persistence.
	Dir string
	// Workers bounds local parallelism.
	Workers int
}

// Summary is the persisted study.json: everything `smtctl study
// status` shows without re-reading the report.
type Summary struct {
	Name            string   `json:"name"`
	Title           string   `json:"title,omitempty"`
	SpecHash        string   `json:"specHash"`
	Backend         string   `json:"backend"`
	State           string   `json:"state"` // done | partial
	GridPoints      int      `json:"gridPoints"`
	UniqueCells     int      `json:"uniqueCells"`
	Warm            int      `json:"warm"`
	ColdAdmitted    int      `json:"coldAdmitted"`
	EstimatedCycles uint64   `json:"estimatedCycles"`
	Skipped         int      `json:"skipped"`
	Failed          int      `json:"failed"`
	Simulated       int      `json:"simulated"` // -1 = unknown
	Tables          []string `json:"tables"`
}

// Result is one completed engine run.
type Result struct {
	Summary Summary
	Tables  []synth.Table
	// Report is the synthesized Markdown.
	Report string
	// Results is plan-aligned (skipped cells zero-valued).
	Results []service.CellResult
}

// Run executes a validated spec end to end. Per-cell failures and
// budget skips never fail the run — they land in the report's
// appendix and the summary counts; only infrastructure errors
// (compile, backend transport, persistence) do.
func Run(ctx context.Context, s *spec.Spec, cfg RunConfig) (*Result, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("study: no backend configured")
	}
	plan, err := compile.Compile(s)
	if err != nil {
		return nil, err
	}
	decision := budget.Admit(plan, s.Budget, cfg.Backend.Probe())

	cells := make([]service.CellSpec, len(decision.Admitted))
	for i, idx := range decision.Admitted {
		cells[i] = plan.Cells[idx].Spec
	}
	var deadline time.Duration
	if s.Deadline != "" {
		deadline, _ = time.ParseDuration(s.Deadline) // validated by Parse
	}
	outcome, err := cfg.Backend.Run(ctx, cells, execute.Options{
		Priority: s.Priority, Deadline: deadline, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("study: execute: %w", err)
	}
	if len(outcome.Results) != len(cells) {
		return nil, fmt.Errorf("study: backend returned %d results for %d cells", len(outcome.Results), len(cells))
	}

	// Scatter backend results back onto plan indices; skipped cells
	// stay zero-valued (synth treats them as missing).
	results := make([]service.CellResult, len(plan.Cells))
	for i, idx := range decision.Admitted {
		results[idx] = outcome.Results[i]
		results[idx].Index = idx
	}

	tables, err := synth.Tables(plan, results)
	if err != nil {
		return nil, err
	}
	md := synth.Report(synth.Input{
		Spec: s, Plan: plan, Decision: decision,
		Outcome: outcome, Results: results, Tables: tables,
	})

	failed := 0
	for _, r := range results {
		if r.State == service.CellFailed || r.State == service.CellCancelled {
			failed++
		}
	}
	state := "done"
	if failed > 0 || len(decision.Skipped) > 0 {
		state = "partial"
	}
	title := s.Title
	if title == "" {
		title = s.Name
	}
	sum := Summary{
		Name: s.Name, Title: title, SpecHash: s.Hash(),
		Backend: outcome.Backend, State: state,
		GridPoints: plan.Requested, UniqueCells: len(plan.Cells),
		Warm: len(decision.Warm), ColdAdmitted: decision.ColdCells,
		EstimatedCycles: decision.EstimatedCycles,
		Skipped:         len(decision.Skipped), Failed: failed,
		Simulated: outcome.Simulated,
	}
	for _, t := range tables {
		sum.Tables = append(sum.Tables, t.Name)
	}

	res := &Result{Summary: sum, Tables: tables, Report: md, Results: results}
	if cfg.Dir != "" {
		if err := persist(cfg.Dir, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// StateDir is where a named study persists under a root.
func StateDir(root, name string) string { return filepath.Join(root, name) }

// persist writes the study's state directory atomically enough for a
// CLI: tables first, then the report, then the summary (the summary's
// presence marks a complete run).
func persist(root string, res *Result) error {
	dir := StateDir(root, res.Summary.Name)
	tdir := filepath.Join(dir, "tables")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return fmt.Errorf("study: %w", err)
	}
	for _, t := range res.Tables {
		if err := os.WriteFile(filepath.Join(tdir, t.Name+".txt"), []byte(t.Text), 0o644); err != nil {
			return fmt.Errorf("study: %w", err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "report.md"), []byte(res.Report), 0o644); err != nil {
		return fmt.Errorf("study: %w", err)
	}
	b, err := json.MarshalIndent(res.Summary, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "study.json"), append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("study: %w", err)
	}
	return nil
}

// LoadSummary reads a persisted study's summary.
func LoadSummary(root, name string) (*Summary, error) {
	b, err := os.ReadFile(filepath.Join(StateDir(root, name), "study.json"))
	if err != nil {
		return nil, fmt.Errorf("study: %w", err)
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("study: %s: %w", name, err)
	}
	return &s, nil
}

// LoadReport reads a persisted study's Markdown report.
func LoadReport(root, name string) (string, error) {
	b, err := os.ReadFile(filepath.Join(StateDir(root, name), "report.md"))
	if err != nil {
		return "", fmt.Errorf("study: %w", err)
	}
	return string(b), nil
}
