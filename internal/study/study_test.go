package study

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smtexplore/internal/cluster"
	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
	"smtexplore/internal/service"
	"smtexplore/internal/store"
	"smtexplore/internal/study/execute"
	"smtexplore/internal/study/spec"
)

func parseFile(t *testing.T, path string) *spec.Spec {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	s, err := spec.Parse(b)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return s
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFig1SpecParityAndWarmReuse is the tentpole's correctness proof in
// miniature: the committed Figure 1 spec, run through the engine, must
// emit the exact bytes `streams -fig 1` prints, and a second run over
// the same store must simulate nothing.
func TestFig1SpecParityAndWarmReuse(t *testing.T) {
	s := parseFile(t, filepath.Join("..", "..", "studies", "fig1.study.json"))
	storeDir := t.TempDir()
	outDir := t.TempDir()
	ctx := context.Background()

	cold, err := Run(ctx, s, RunConfig{
		Backend: execute.NewLocal(openStore(t, storeDir)), Dir: outDir,
	})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	rows, err := experiments.Fig1(ctx, experiments.Options{Cache: runner.NewCache()},
		experiments.StreamMachineConfig(), experiments.Fig1Kinds())
	if err != nil {
		t.Fatalf("legacy fig1: %v", err)
	}
	legacy := experiments.FormatFig1(rows) + "\n"

	if len(cold.Tables) != 1 || cold.Tables[0].Name != "fig1" {
		t.Fatalf("tables: %+v", cold.Tables)
	}
	if cold.Tables[0].Text != legacy {
		t.Fatalf("study fig1 table is not byte-identical to the legacy harness:\n--- study ---\n%s--- legacy ---\n%s",
			cold.Tables[0].Text, legacy)
	}
	if cold.Summary.Simulated != 30 || cold.Summary.Warm != 0 || cold.Summary.UniqueCells != 30 {
		t.Errorf("cold summary: %+v", cold.Summary)
	}
	if cold.Summary.State != "done" {
		t.Errorf("cold state = %q", cold.Summary.State)
	}

	// Warm re-run: fresh cache, same store — everything must be served
	// from disk, nothing simulated, output byte-identical.
	warm, err := Run(ctx, s, RunConfig{
		Backend: execute.NewLocal(openStore(t, storeDir)), Dir: outDir,
	})
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warm.Summary.Simulated != 0 {
		t.Errorf("warm run simulated %d cells, want 0", warm.Summary.Simulated)
	}
	if warm.Summary.Warm != 30 {
		t.Errorf("warm run saw %d warm cells, want 30", warm.Summary.Warm)
	}
	if warm.Tables[0].Text != legacy {
		t.Errorf("warm table diverged from the legacy bytes")
	}

	// Persistence: summary, report and table are on disk and loadable.
	sum, err := LoadSummary(outDir, "fig1")
	if err != nil {
		t.Fatalf("LoadSummary: %v", err)
	}
	if sum.SpecHash != s.Hash() || sum.Simulated != 0 {
		t.Errorf("persisted summary: %+v", sum)
	}
	md, err := LoadReport(outDir, "fig1")
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	for _, want := range []string{
		"# Study report — Figure 1",
		"skipped cells: none",
		"cold simulations this run: 0",
		"## Deltas vs. the paper",
		"claims reproduced",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report is missing %q", want)
		}
	}
	tb, err := os.ReadFile(filepath.Join(outDir, "fig1", "tables", "fig1.txt"))
	if err != nil || string(tb) != legacy {
		t.Errorf("persisted table diverged (err %v)", err)
	}
}

// TestTable1SpecParity proves the committed Markdown spec regenerates
// Table 1 byte-identically to `kernels -table 1`.
func TestTable1SpecParity(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 runs twelve kernel cells")
	}
	s := parseFile(t, filepath.Join("..", "..", "studies", "table1.study.md"))
	ctx := context.Background()
	st := openStore(t, t.TempDir())

	res, err := Run(ctx, s, RunConfig{Backend: execute.NewLocal(st)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	cols, err := experiments.Table1(ctx, experiments.Options{Cache: runner.NewCache().WithTier(st)})
	if err != nil {
		t.Fatalf("legacy table1: %v", err)
	}
	legacy := experiments.FormatTable1(cols)
	if res.Tables[0].Text != legacy {
		t.Fatalf("study table1 is not byte-identical to the legacy harness:\n--- study ---\n%s--- legacy ---\n%s",
			res.Tables[0].Text, legacy)
	}
	if s.Title == "" || !strings.HasPrefix(s.Title, "Table 1") {
		t.Errorf("markdown title not picked up: %q", s.Title)
	}
}

// TestRemoteBackendParity swaps the backend for a real daemon over HTTP
// and requires the identical table bytes — the backend seam's contract.
func TestRemoteBackendParity(t *testing.T) {
	inline := `{"name":"mini","sweeps":[{"name":"mini","kind":"stream",
		"streams":["fadd","iload"],"ilp":["min"],"window":20000}]}`
	s, err := spec.Parse([]byte(inline))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	local, err := Run(ctx, s, RunConfig{Backend: execute.NewLocal(openStore(t, t.TempDir()))})
	if err != nil {
		t.Fatalf("local run: %v", err)
	}

	storeDir := t.TempDir()
	st := openStore(t, storeDir)
	svc := service.New(service.Config{Workers: 2, Cache: runner.NewCache().WithTier(st), Store: st})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	remote, err := Run(ctx, s, RunConfig{Backend: &execute.Remote{Worker: cluster.NewRemote("w", addr)}})
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if remote.Tables[0].Text != local.Tables[0].Text {
		t.Fatalf("backends disagree:\n--- local ---\n%s--- remote ---\n%s",
			local.Tables[0].Text, remote.Tables[0].Text)
	}
	if remote.Summary.Backend != "daemon" {
		t.Errorf("backend name = %q", remote.Summary.Backend)
	}
	if remote.Summary.Simulated != 4 {
		t.Errorf("daemon simulated %d cells, want 4", remote.Summary.Simulated)
	}
}

// TestBudgetSkipsLandInReport: over-budget cells are skipped, reported,
// and flip the study to partial — never silently dropped.
func TestBudgetSkipsLandInReport(t *testing.T) {
	inline := `{"name":"tight","budget":{"cells":1},"sweeps":[{"name":"s","kind":"stream",
		"streams":["fadd"],"ilp":["min"],"threads":[1,2],"window":5000}]}`
	s, err := spec.Parse([]byte(inline))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, RunConfig{Backend: execute.NewLocal(openStore(t, t.TempDir()))})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Summary.State != "partial" || res.Summary.Skipped != 1 || res.Summary.Simulated != 1 {
		t.Fatalf("summary: %+v", res.Summary)
	}
	if !strings.Contains(res.Report, "cell budget exhausted") {
		t.Errorf("report does not explain the skip")
	}
	// The skipped duo renders as zero; the admitted solo must be real.
	if !strings.Contains(res.Tables[0].Text, "0.00") {
		t.Errorf("skipped cell should render as zero:\n%s", res.Tables[0].Text)
	}
}
