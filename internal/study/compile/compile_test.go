package compile

import (
	"testing"

	"smtexplore/internal/experiments"
	"smtexplore/internal/service"
	"smtexplore/internal/streams"
	"smtexplore/internal/study/spec"
)

func mustParse(t *testing.T, in string) *spec.Spec {
	t.Helper()
	s, err := spec.Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestCompileFig1Grid(t *testing.T) {
	s := mustParse(t, `{"name":"f1","sweeps":[{"name":"fig1","kind":"stream",
		"streams":["fadd","fmul","fadd-mul","iadd","iload"],"ilp":["min","med","max"]}]}`)
	p, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// 5 kinds × 3 ILP × {1,2} threads, all distinct.
	if len(p.Cells) != 30 || p.Requested != 30 {
		t.Fatalf("cells = %d (requested %d), want 30", len(p.Cells), p.Requested)
	}
	// Every cell must carry the exact key the Figure 1 harness caches
	// under — that identity is the whole dedupe story.
	idx := p.Tables[0].Cells["fadd|min|2"]
	want := experiments.StreamCellKey(experiments.StreamMachineConfig(), []streams.Spec{
		{Kind: streams.FAddS, ILP: streams.MinILP},
		{Kind: streams.FAddS, ILP: streams.MinILP},
	}, experiments.StreamWindowCycles)
	if p.Cells[idx].Key != want {
		t.Errorf("fadd/min duo key mismatch with the legacy harness key")
	}
	if p.Cells[idx].Cost != experiments.StreamWindowCycles {
		t.Errorf("stream cell cost = %d, want the window", p.Cells[idx].Cost)
	}
	if got := p.Cells[idx].Spec; got.Type != service.TypeStream || len(got.Streams) != 2 {
		t.Errorf("cell spec = %+v", got)
	}
}

func TestCompileDedupesAcrossSweeps(t *testing.T) {
	// The fig2 diagonal duos and solos overlap the fig1 grid cells for
	// the same kinds; compiling both must share cells.
	s := mustParse(t, `{"name":"x","sweeps":[
		{"name":"a","kind":"stream","streams":["fadd","fmul"],"ilp":["min"]},
		{"name":"b","kind":"stream","table":"fig2","streams":["fadd","fmul"],"ilp":["min"]}]}`)
	p, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Sweep a: 2×1×2 = 4 cells (2 solos + 2 self-duos).
	// Sweep b: 2 solos (dup) + 4 duos, of which the 2 diagonal ones dup.
	if p.Requested != 10 {
		t.Errorf("requested = %d, want 10", p.Requested)
	}
	if len(p.Cells) != 6 {
		t.Errorf("unique cells = %d, want 6", len(p.Cells))
	}
	if p.Tables[0].Cells["fadd|min|2"] != p.Tables[1].Cells["duo|fadd|fadd|min"] {
		t.Errorf("fig1 duo and fig2 diagonal compiled to different cells")
	}
	if p.Tables[0].Cells["fadd|min|1"] != p.Tables[1].Cells["solo|fadd|min"] {
		t.Errorf("fig1 solo and fig2 solo compiled to different cells")
	}
}

func TestCompileKernelSweep(t *testing.T) {
	s := mustParse(t, `{"name":"k","sweeps":[{"name":"mm","kind":"kernel",
		"kernels":["mm"],"sizes":[32],"modes":["serial","tlp-fine"]}]}`)
	p, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(p.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(p.Cells))
	}
	mode, _ := spec.ParseMode("tlp-fine")
	want, err := experiments.KernelCellKey("mm", 32, mode)
	if err != nil {
		t.Fatal(err)
	}
	idx := p.Tables[0].Cells["32|tlp-fine"]
	if p.Cells[idx].Key != want {
		t.Errorf("kernel key mismatch with the legacy harness key")
	}
}

func TestCompileKernelDefaultModes(t *testing.T) {
	s := mustParse(t, `{"name":"k","sweeps":[{"name":"mm","kind":"kernel",
		"kernels":["mm"],"sizes":[32]}]}`)
	p, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	modes, err := experiments.KernelModes("mm", 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != len(modes) {
		t.Errorf("default-mode sweep has %d cells, kernel implements %d modes", len(p.Cells), len(modes))
	}
}

func TestCompileHarness(t *testing.T) {
	s := mustParse(t, `{"name":"h","sweeps":[
		{"name":"a","kind":"harness","harnesses":["table1","fig1"]},
		{"name":"b","kind":"harness","harnesses":["table1"]}]}`)
	p, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(p.Cells) != 2 || p.Requested != 3 {
		t.Errorf("cells = %d requested = %d, want 2/3 (table1 deduped)", len(p.Cells), p.Requested)
	}
	if p.Cells[0].Key != "" {
		t.Errorf("harness cells must not claim a store key")
	}
	if _, err := Compile(mustParse(t, `{"name":"h","sweeps":[{"name":"a","kind":"harness","harnesses":["fig9"]}]}`)); err == nil {
		t.Errorf("unknown harness accepted")
	}
}
