// Package compile lowers a validated study spec into a deduplicated DAG
// of content-keyed simulation cells plus the table nodes that consume
// them.
//
// Each cell carries the exact content key the legacy harnesses cache
// and store results under (experiments.StreamCellKey/KernelCellKey), so
// a study deduplicates in three directions at once: within itself (the
// fig2 diagonal reuses fig1 duos), against previous studies sharing a
// store, and against the CLI tools and daemon fleet writing to the same
// store. Harness cells have no single-unit key — their inner cells are
// the keyed units — so they compile with an empty Key and a coarse cost
// estimate.
package compile

import (
	"fmt"

	"smtexplore/internal/experiments"
	"smtexplore/internal/service"
	"smtexplore/internal/streams"
	"smtexplore/internal/study/spec"
)

// Cost estimates for admission, in simulated cycles per cold cell.
// Stream cells are exact (a measurement runs its window and stops);
// kernel and harness cells run to completion, so these are deliberately
// coarse upper-end guesses a sweep can override with CellCost.
const (
	// DefaultKernelCost approximates one kernel cell (mm/lu N≤128, the
	// cg/bt defaults all finish well inside this).
	DefaultKernelCost = 2_000_000
	// DefaultHarnessCost approximates one whole-figure harness cell.
	DefaultHarnessCost = 10_000_000
)

// CellNode is one simulation unit of the plan.
type CellNode struct {
	// Key is the content key shared with the runner cache and the disk
	// store; empty for harness cells (their inner cells carry the keys).
	Key string
	// Spec is the service-shaped cell, executable by any backend.
	Spec service.CellSpec
	// Cost is the admission estimate in simulated cycles, charged only
	// when the cell is cold.
	Cost uint64
}

// TableNode maps one sweep's table roles onto plan cell indices. Roles
// are synthesis-internal names ("fadd|min|2", "solo|iadd|max",
// "64|tlp-fine", "text|fig1") the synth package reconstructs rows from.
type TableNode struct {
	Sweep spec.Sweep
	Cells map[string]int
}

// Plan is the compiled study: the deduplicated cell list in submission
// order and one table node per sweep.
type Plan struct {
	Spec   *spec.Spec
	Cells  []CellNode
	Tables []TableNode
	// Requested counts grid points before deduplication (the fig2
	// diagonal re-requesting fig1 duos, repeated harnesses, …);
	// Requested - len(Cells) is the work dedupe saved.
	Requested int
}

// Labels returns the display labels of the plan's cells, index-aligned.
func (p *Plan) Labels() []string {
	out := make([]string, len(p.Cells))
	for i, c := range p.Cells {
		out[i] = c.Spec.Label()
	}
	return out
}

// builder accumulates deduplicated cells.
type builder struct {
	plan  *Plan
	index map[string]int // dedupe key → cell index
}

// add registers a cell under its dedupe key and returns its index.
func (b *builder) add(dedupe string, node CellNode) int {
	b.plan.Requested++
	if i, ok := b.index[dedupe]; ok {
		return i
	}
	i := len(b.plan.Cells)
	b.index[dedupe] = i
	b.plan.Cells = append(b.plan.Cells, node)
	return i
}

// Compile lowers the spec. The spec must already be valid (Parse
// validates); compile re-checks only what it alone can know — harness
// names against the service registry and kernel mode support.
func Compile(s *spec.Spec) (*Plan, error) {
	b := &builder{plan: &Plan{Spec: s}, index: map[string]int{}}
	for _, sw := range s.Sweeps {
		var (
			table TableNode
			err   error
		)
		switch sw.EffectiveTable() {
		case spec.TableFig1:
			table, err = compileFig1(b, sw)
		case spec.TableFig2:
			table, err = compileFig2(b, sw)
		case spec.TableKernel:
			table, err = compileKernel(b, sw)
		case spec.TableText:
			table, err = compileText(b, sw)
		default:
			err = fmt.Errorf("unknown table style %q", sw.EffectiveTable())
		}
		if err != nil {
			return nil, fmt.Errorf("compile: sweep %q: %w", sw.Name, err)
		}
		b.plan.Tables = append(b.plan.Tables, table)
	}
	return b.plan, nil
}

// window is the sweep's effective measurement window.
func window(sw spec.Sweep) uint64 {
	if sw.Window > 0 {
		return sw.Window
	}
	return experiments.StreamWindowCycles
}

// cost is the sweep's effective per-cold-cell estimate.
func cost(sw spec.Sweep, def uint64) uint64 {
	if sw.CellCost > 0 {
		return sw.CellCost
	}
	return def
}

// streamCell compiles one stream cell (n co-executed copies of the
// given kind×ILP pairs) and returns its plan index.
func streamCell(b *builder, sw spec.Sweep, pairs [][2]string) (int, error) {
	w := window(sw)
	specs := make([]streams.Spec, len(pairs))
	cellStreams := make([]service.StreamSpec, len(pairs))
	for i, p := range pairs {
		kind, err := spec.ParseKind(p[0])
		if err != nil {
			return 0, err
		}
		ilp, err := spec.ParseILP(p[1])
		if err != nil {
			return 0, err
		}
		specs[i] = streams.Spec{Kind: kind, ILP: ilp}
		cellStreams[i] = service.StreamSpec{Kind: kind.String(), ILP: spec.ILPName(ilp)}
	}
	key := experiments.StreamCellKey(experiments.StreamMachineConfig(), specs, w)
	return b.add(key, CellNode{
		Key:  key,
		Spec: service.CellSpec{Type: service.TypeStream, Streams: cellStreams, Window: w},
		Cost: cost(sw, w),
	}), nil
}

// compileFig1 compiles the solo/duo CPI grid: streams × ILP × threads,
// in spec order (the committed paper specs list the paper's order, so
// synthesis is byte-identical to the Figure 1 harness).
func compileFig1(b *builder, sw spec.Sweep) (TableNode, error) {
	t := TableNode{Sweep: sw, Cells: map[string]int{}}
	for _, k := range sw.Streams {
		for _, ilpName := range sw.EffectiveILP() {
			ilp, err := spec.ParseILP(ilpName)
			if err != nil {
				return t, err
			}
			for _, n := range sw.EffectiveThreads() {
				pairs := make([][2]string, n)
				for i := range pairs {
					pairs[i] = [2]string{k, ilpName}
				}
				idx, err := streamCell(b, sw, pairs)
				if err != nil {
					return t, err
				}
				t.Cells[fmt.Sprintf("%s|%s|%d", k, spec.ILPName(ilp), n)] = idx
			}
		}
	}
	return t, nil
}

// compileFig2 compiles the pairwise slowdown matrix: solo baselines
// first (one per kind×ILP over the subject∪partner union), then the
// ordered duos — the same enumeration order as experiments.Fig2.
func compileFig2(b *builder, sw spec.Sweep) (TableNode, error) {
	t := TableNode{Sweep: sw, Cells: map[string]int{}}
	subjects := sw.Streams
	partners := sw.EffectivePartners()
	union := subjects
	seen := map[string]bool{}
	for _, k := range subjects {
		seen[k] = true
	}
	for _, k := range partners {
		if !seen[k] {
			seen[k] = true
			union = append(append([]string{}, union...), k)
		}
	}
	for _, ilpName := range sw.EffectiveILP() {
		ilp, err := spec.ParseILP(ilpName)
		if err != nil {
			return t, err
		}
		for _, k := range union {
			idx, err := streamCell(b, sw, [][2]string{{k, ilpName}})
			if err != nil {
				return t, err
			}
			t.Cells[fmt.Sprintf("solo|%s|%s", k, spec.ILPName(ilp))] = idx
		}
	}
	for _, ilpName := range sw.EffectiveILP() {
		ilp, err := spec.ParseILP(ilpName)
		if err != nil {
			return t, err
		}
		for _, s := range subjects {
			for _, p := range partners {
				idx, err := streamCell(b, sw, [][2]string{{s, ilpName}, {p, ilpName}})
				if err != nil {
					return t, err
				}
				t.Cells[fmt.Sprintf("duo|%s|%s|%s", s, p, spec.ILPName(ilp))] = idx
			}
		}
	}
	return t, nil
}

// compileKernel compiles one kernel's size×mode grid in the figure
// sweeps' enumeration order (sizes outer, the kernel's own mode order
// inner when the spec does not pin modes).
func compileKernel(b *builder, sw spec.Sweep) (TableNode, error) {
	t := TableNode{Sweep: sw, Cells: map[string]int{}}
	kernel := sw.Kernels[0]
	sizes := sw.Sizes
	if len(sizes) == 0 {
		sizes = []int{0} // cg/bt instance default (mm/lu rejected by Validate)
	}
	for _, size := range sizes {
		modeNames := sw.Modes
		if len(modeNames) == 0 {
			modes, err := experiments.KernelModes(kernel, size)
			if err != nil {
				return t, err
			}
			modeNames = make([]string, len(modes))
			for i, m := range modes {
				modeNames[i] = m.String()
			}
		}
		for _, modeName := range modeNames {
			mode, err := spec.ParseMode(modeName)
			if err != nil {
				return t, err
			}
			key, err := experiments.KernelCellKey(kernel, size, mode)
			if err != nil {
				return t, err
			}
			idx := b.add(key, CellNode{
				Key: key,
				Spec: service.CellSpec{
					Type: service.TypeKernel, Kernel: kernel,
					Mode: mode.String(), Size: size,
				},
				Cost: cost(sw, DefaultKernelCost),
			})
			t.Cells[fmt.Sprintf("%d|%s", size, mode)] = idx
		}
	}
	return t, nil
}

// compileText compiles whole-harness cells, validated against the
// service's harness registry.
func compileText(b *builder, sw spec.Sweep) (TableNode, error) {
	t := TableNode{Sweep: sw, Cells: map[string]int{}}
	valid := map[string]bool{}
	for _, n := range service.HarnessNames() {
		valid[n] = true
	}
	for _, h := range sw.Harnesses {
		if !valid[h] {
			return t, fmt.Errorf("unknown harness %q", h)
		}
		idx := b.add("harness|"+h, CellNode{
			Spec: service.CellSpec{Type: service.TypeHarness, Harness: h},
			Cost: cost(sw, DefaultHarnessCost),
		})
		t.Cells["text|"+h] = idx
	}
	return t, nil
}
