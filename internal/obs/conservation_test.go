package obs

import (
	"testing"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

// checkConservation reconciles what the instruments recorded against the
// machine's own counter bank:
//
//   - per-context span count equals the uops_retired counter (the tracer
//     observed every retirement and invented none);
//   - every span's stages are ordered alloc ≤ issue ≤ complete ≤ retire;
//   - the occupancy series' active/halted cycle sums equal the cycles and
//     halted_cycles counters, and its windows tile the whole run.
func checkConservation(t *testing.T, m *smt.Machine, tr *Tracer, sp *Sampler) {
	t.Helper()
	snap := m.Counters().Snapshot()

	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d spans; sized too small for this run", tr.Dropped())
	}
	var perTid [smt.NumContexts]uint64
	for _, s := range tr.Spans() {
		perTid[s.Tid]++
		if s.IssueCycle < s.AllocCycle || s.CompleteCycle < s.IssueCycle || s.Cycle < s.CompleteCycle {
			t.Fatalf("span stages out of order: %+v", s)
		}
	}
	for tid := 0; tid < smt.NumContexts; tid++ {
		if want := snap.Get(perfmon.UopsRetired, tid); perTid[tid] != want {
			t.Errorf("cpu%d: %d spans, uops_retired counter says %d", tid, perTid[tid], want)
		}
	}

	var active, halted [smt.NumContexts]uint64
	var covered uint64
	for _, s := range sp.Samples() {
		covered += s.Window
		for tid := 0; tid < smt.NumContexts; tid++ {
			active[tid] += s.ActiveCycles[tid]
			halted[tid] += s.HaltedCycles[tid]
		}
	}
	if covered != m.Cycle() {
		t.Errorf("occupancy windows cover %d cycles, machine ran %d", covered, m.Cycle())
	}
	for tid := 0; tid < smt.NumContexts; tid++ {
		if want := snap.Get(perfmon.Cycles, tid); active[tid] != want {
			t.Errorf("cpu%d: occupancy sums %d active cycles, counter says %d", tid, active[tid], want)
		}
		if want := snap.Get(perfmon.HaltedCycles, tid); halted[tid] != want {
			t.Errorf("cpu%d: occupancy sums %d halted cycles, counter says %d", tid, halted[tid], want)
		}
	}
}

// TestConservationStreamPair co-runs two of the paper's synthetic streams
// (an FP arithmetic stream against an integer load stream) under a cycle
// budget and reconciles instruments against counters.
func TestConservationStreamPair(t *testing.T) {
	m := smt.New(smt.DefaultConfig())
	defer m.Close()
	tr := NewTracer(TracerConfig{Max: 1 << 20})
	tr.Attach(m)
	sp := NewSampler(SamplerConfig{Every: 1, Max: 1 << 16})
	sp.Attach(m)

	m.LoadProgram(0, streams.Build(streams.Spec{Kind: streams.FAddS, ILP: streams.MaxILP}))
	m.LoadProgram(1, streams.Build(streams.Spec{
		Kind: streams.ILoadS, ILP: streams.MedILP, Base: streams.DisjointBase(1),
	}))
	if _, err := m.Run(20_000); err != nil {
		t.Fatal(err)
	}
	sp.Finish()
	checkConservation(t, m, tr, sp)
}

// TestConservationKernelMode runs a small matrix-multiply in the
// fine-grained TLP mode (both contexts live, with halt/wakeup traffic on
// the synchronisation cells) to completion and reconciles the same way.
func TestConservationKernelMode(t *testing.T) {
	k, err := mm.New(mm.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	progs, err := k.Programs(kernels.TLPFine)
	if err != nil {
		t.Fatal(err)
	}
	m := smt.New(smt.DefaultConfig())
	defer m.Close()
	tr := NewTracer(TracerConfig{Max: 1 << 21})
	tr.Attach(m)
	sp := NewSampler(SamplerConfig{Every: 1, Max: 1 << 16})
	sp.Attach(m)

	m.LoadProgram(kernels.WorkerTid, progs[0])
	if progs[1] != nil {
		m.LoadProgram(kernels.HelperTid, progs[1])
	}
	res, err := m.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("kernel did not complete")
	}
	sp.Finish()
	checkConservation(t, m, tr, sp)
}
