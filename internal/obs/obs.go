// Package obs is the observability layer of the simulator: it turns runs
// into inspectable artifacts, the way the paper's custom
// performance-monitoring library and Pin-based profiles turned the
// Xeon's opaque pipeline into measurable behaviour (§5, Table 1).
//
// Three instruments compose freely on one smt.Machine:
//
//   - Tracer records per-µop alloc→issue→complete→retire lifecycle spans
//     per hardware context (bounded ring, optional cycle window) and
//     exports Chrome trace-event JSON loadable in Perfetto or
//     chrome://tracing.
//   - Sampler produces per-cycle time series of shared-resource
//     occupancy — issue-slot consumption, allocator/store-buffer
//     occupancy, outstanding L2 fills, halted vs. active cycles per
//     context — exported as CSV or JSON, with adaptive decimation so
//     arbitrarily long runs stay bounded.
//   - Metrics snapshots the full perfmon counter bank plus run- and
//     runner-level meta-metrics into one machine-readable JSON document.
//
// All exports are deterministic: identical runs produce byte-identical
// artifacts, which the golden and conservation tests rely on.
package obs

import (
	"smtexplore/internal/smt"
)

// DefaultTracerMax bounds the tracer ring when the configuration leaves
// it zero.
const DefaultTracerMax = 1 << 16

// TracerConfig parameterises a Tracer.
type TracerConfig struct {
	// Max bounds the retained spans; once full, the oldest span is
	// dropped per new arrival (≤0 → DefaultTracerMax).
	Max int
	// From/To restrict recording to µops retiring in [From, To); To of
	// zero leaves the window open-ended. Windowing long runs keeps the
	// artifact small without touching the ring bound.
	From, To uint64
}

// Tracer records the pipeline lifecycle of retired µops from the
// machine's retirement stream. Attach it before running.
type Tracer struct {
	cfg     TracerConfig
	max     int
	ring    []smt.RetireInfo
	start   int // index of the oldest span
	count   int
	dropped uint64
	chain   func(smt.RetireInfo)
}

// NewTracer builds a tracer for the given configuration.
func NewTracer(cfg TracerConfig) *Tracer {
	max := cfg.Max
	if max <= 0 {
		max = DefaultTracerMax
	}
	return &Tracer{cfg: cfg, max: max}
}

// Attach installs the tracer as the machine's retirement observer,
// chaining to any observer already installed (profile collectors, the
// timeline tracer of internal/smt) so instruments stack.
func (t *Tracer) Attach(m *smt.Machine) {
	t.chain = m.RetireObserver()
	m.OnRetire(t.Observe)
}

// Observe records one retirement. It is the raw observer hook; most
// callers use Attach.
func (t *Tracer) Observe(ri smt.RetireInfo) {
	if t.chain != nil {
		defer t.chain(ri)
	}
	if ri.Cycle < t.cfg.From || (t.cfg.To != 0 && ri.Cycle >= t.cfg.To) {
		return
	}
	if t.ring == nil {
		t.ring = make([]smt.RetireInfo, t.max)
	}
	if t.count == t.max {
		t.ring[t.start] = ri
		t.start = (t.start + 1) % t.max
		t.dropped++
		return
	}
	t.ring[(t.start+t.count)%t.max] = ri
	t.count++
}

// Spans returns the retained spans in retirement order (oldest first).
func (t *Tracer) Spans() []smt.RetireInfo {
	out := make([]smt.RetireInfo, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.ring[(t.start+i)%t.max]
	}
	return out
}

// Dropped reports how many in-window spans were evicted by the ring
// bound — nonzero means the artifact is a suffix of the window.
func (t *Tracer) Dropped() uint64 { return t.dropped }
