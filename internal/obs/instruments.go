package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"smtexplore/internal/smt"
)

// Instruments bundles the full instrument set — pipeline tracer plus
// occupancy sampler — for callers that observe a whole cell at once (the
// experiment harnesses). Attach before the run; Export afterwards writes
// the three artifacts (Chrome trace, occupancy CSV, metrics JSON) side by
// side in one directory.
type Instruments struct {
	Tracer  *Tracer
	Sampler *Sampler

	m       *smt.Machine
	started time.Time
}

// NewInstruments builds the bundle. traceMax ≤0 and sampleEvery ≤0 take
// the package defaults.
func NewInstruments(traceMax int, sampleEvery uint64) *Instruments {
	return &Instruments{
		Tracer:  NewTracer(TracerConfig{Max: traceMax}),
		Sampler: NewSampler(SamplerConfig{Every: sampleEvery}),
	}
}

// Attach installs both instruments on m, chaining to any observers
// already present.
func (ins *Instruments) Attach(m *smt.Machine) {
	ins.m = m
	ins.started = time.Now()
	ins.Tracer.Attach(m)
	ins.Sampler.Attach(m)
}

// Slug turns a cell label into a filesystem-safe artifact basename.
func Slug(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, label)
}

// Export flushes the sampler and writes <slug>.trace.json,
// <slug>.occupancy.csv and <slug>.metrics.json under dir (created if
// missing). meta entries (wall time, cache statistics, ...) land in the
// metrics document.
func (ins *Instruments) Export(dir, label string, completed bool, meta map[string]any) error {
	if ins.m == nil {
		return fmt.Errorf("obs: instruments never attached")
	}
	wall := time.Since(ins.started)
	ins.Sampler.Finish()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := Slug(label)
	err := writeArtifact(filepath.Join(dir, slug+".trace.json"), func(w io.Writer) error {
		return WriteChromeTrace(w, ins.Tracer.Spans(), ins.Sampler.Samples())
	})
	if err != nil {
		return err
	}
	err = writeArtifact(filepath.Join(dir, slug+".occupancy.csv"), ins.Sampler.WriteCSV)
	if err != nil {
		return err
	}
	x := CollectMetrics(ins.m, label, completed)
	x.Put("wall_seconds", wall.Seconds())
	x.Put("trace_spans", len(ins.Tracer.Spans()))
	x.Put("trace_spans_dropped", ins.Tracer.Dropped())
	for k, v := range meta {
		x.Put(k, v)
	}
	return writeArtifact(filepath.Join(dir, slug+".metrics.json"), x.WriteJSON)
}

func writeArtifact(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
