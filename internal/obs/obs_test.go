package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

// chainProg emits n dependent-chain ALU ops spread over width registers.
func chainProg(op isa.Op, n, width int) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < n && !e.Stopped(); i++ {
			if op == isa.IAdd {
				e.ALU(op, isa.R(i%width), isa.R(20), isa.R(21))
			} else {
				e.ALU(op, isa.F(i%width), isa.F(20), isa.F(21))
			}
		}
	})
}

// runTraced runs a small dual-context workload with a tracer and a
// per-cycle sampler attached and returns all three.
func runTraced(t *testing.T, tcfg TracerConfig, scfg SamplerConfig) (*smt.Machine, *Tracer, *Sampler) {
	t.Helper()
	m := smt.New(smt.DefaultConfig())
	tr := NewTracer(tcfg)
	tr.Attach(m)
	sp := NewSampler(scfg)
	sp.Attach(m)
	m.LoadProgram(0, chainProg(isa.FAdd, 400, 6))
	m.LoadProgram(1, chainProg(isa.IAdd, 300, 6))
	res, err := m.Run(1_000_000)
	if err != nil || !res.Completed {
		t.Fatalf("run: err=%v completed=%v", err, res.Completed)
	}
	sp.Finish()
	return m, tr, sp
}

func TestTracerRecordsAllRetirements(t *testing.T) {
	_, tr, _ := runTraced(t, TracerConfig{}, SamplerConfig{Every: 1})
	spans := tr.Spans()
	if len(spans) != 700 {
		t.Fatalf("got %d spans, want 700", len(spans))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d spans with roomy ring", tr.Dropped())
	}
	// Retirement order is monotone in the retire cycle.
	for i := 1; i < len(spans); i++ {
		if spans[i].Cycle < spans[i-1].Cycle {
			t.Fatalf("span %d retires at %d before predecessor at %d", i, spans[i].Cycle, spans[i-1].Cycle)
		}
	}
}

func TestTracerRingBound(t *testing.T) {
	_, tr, _ := runTraced(t, TracerConfig{Max: 64}, SamplerConfig{})
	spans := tr.Spans()
	if len(spans) != 64 {
		t.Fatalf("ring kept %d spans, want 64", len(spans))
	}
	if tr.Dropped() != 700-64 {
		t.Fatalf("dropped %d, want %d", tr.Dropped(), 700-64)
	}
	// The ring keeps the newest suffix: its last span is the last
	// retirement overall.
	all := NewTracer(TracerConfig{})
	m := smt.New(smt.DefaultConfig())
	all.Attach(m)
	m.LoadProgram(0, chainProg(isa.FAdd, 400, 6))
	m.LoadProgram(1, chainProg(isa.IAdd, 300, 6))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	full := all.Spans()
	if got, want := spans[len(spans)-1], full[len(full)-1]; got != want {
		t.Fatalf("ring tail %+v != run tail %+v", got, want)
	}
}

func TestTracerWindow(t *testing.T) {
	_, full, _ := runTraced(t, TracerConfig{}, SamplerConfig{})
	mid := full.Spans()[350].Cycle
	_, windowed, _ := runTraced(t, TracerConfig{From: mid, To: mid + 50}, SamplerConfig{})
	spans := windowed.Spans()
	if len(spans) == 0 {
		t.Fatal("window captured nothing")
	}
	for _, s := range spans {
		if s.Cycle < mid || s.Cycle >= mid+50 {
			t.Fatalf("span retiring at %d escaped window [%d, %d)", s.Cycle, mid, mid+50)
		}
	}
}

func TestTracerChainsExistingObserver(t *testing.T) {
	m := smt.New(smt.DefaultConfig())
	var chained int
	m.OnRetire(func(smt.RetireInfo) { chained++ })
	tr := NewTracer(TracerConfig{})
	tr.Attach(m)
	m.LoadProgram(0, chainProg(isa.FAdd, 50, 6))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if chained != len(tr.Spans()) || chained == 0 {
		t.Fatalf("chained observer saw %d, tracer %d", chained, len(tr.Spans()))
	}
}

// chromeDoc mirrors the trace container for schema validation with
// unknown fields rejected.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   *uint64        `json:"ts"`
		Dur  uint64         `json:"dur"`
		Pid  *int           `json:"pid"`
		Tid  *int           `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// validateChrome checks structural validity of a serialized trace:
// parseable, known phases only, required fields present, X slices with
// sane stage ordering inside args.
func validateChrome(t *testing.T, data []byte) chromeDoc {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc chromeDoc
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace does not parse under strict schema: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing required field: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			alloc, aok := ev.Args["alloc"].(float64)
			issue, iok := ev.Args["issue"].(float64)
			complete, cok := ev.Args["complete"].(float64)
			retire, rok := ev.Args["retire"].(float64)
			if !aok || !iok || !cok || !rok {
				t.Fatalf("slice %d lacks stage args: %+v", i, ev.Args)
			}
			if issue < alloc || complete < issue || retire < complete {
				t.Fatalf("slice %d stages out of order: %+v", i, ev.Args)
			}
		case "C":
			if len(ev.Args) == 0 {
				t.Fatalf("counter event %d without series", i)
			}
		case "M":
			if ev.Args["name"] == "" {
				t.Fatalf("metadata event %d without name", i)
			}
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ev.Ph)
		}
	}
	return doc
}

func TestChromeTraceSchemaAndDeterminism(t *testing.T) {
	render := func() []byte {
		_, tr, sp := runTraced(t, TracerConfig{}, SamplerConfig{Every: 32})
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tr.Spans(), sp.Samples()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	validateChrome(t, a)
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different traces")
	}
}

func TestChromeTraceLanesNeverOverlap(t *testing.T) {
	_, tr, _ := runTraced(t, TracerConfig{}, SamplerConfig{})
	ct := BuildChromeTrace(tr.Spans(), nil)
	type key struct{ pid, tid int }
	end := map[key]uint64{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		k := key{ev.Pid, ev.Tid}
		if ev.Ts < end[k] {
			t.Fatalf("lane %v: slice at %d overlaps previous ending %d", k, ev.Ts, end[k])
		}
		end[k] = ev.Ts + ev.Dur
	}
}

func TestSamplerFullCoverage(t *testing.T) {
	m, _, sp := runTraced(t, TracerConfig{}, SamplerConfig{Every: 7})
	var covered uint64
	for _, s := range sp.Samples() {
		covered += s.Window
	}
	if covered != m.Cycle() {
		t.Fatalf("windows cover %d cycles, run took %d", covered, m.Cycle())
	}
}

func TestSamplerDecimation(t *testing.T) {
	sp := NewSampler(SamplerConfig{Every: 1, Max: 16})
	m := smt.New(smt.DefaultConfig())
	sp.Attach(m)
	m.LoadProgram(0, chainProg(isa.FAdd, 2000, 6))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	sp.Finish()
	if n := len(sp.Samples()); n >= 16 || n == 0 {
		t.Fatalf("decimated series has %d samples, want within (0, 16)", n)
	}
	if sp.Every() <= 1 {
		t.Fatalf("period %d did not grow under decimation", sp.Every())
	}
	var covered, retired uint64
	for _, s := range sp.Samples() {
		covered += s.Window
		retired += s.UopsRetired[0]
	}
	if covered != m.Cycle() {
		t.Fatalf("decimated windows cover %d cycles, run took %d", covered, m.Cycle())
	}
	if retired != 2000 {
		t.Fatalf("decimated series retains %d retirements, want 2000", retired)
	}
}

func TestSamplerCSVShape(t *testing.T) {
	_, _, sp := runTraced(t, TracerConfig{}, SamplerConfig{Every: 64})
	var buf bytes.Buffer
	if err := sp.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(sp.Samples())+1 {
		t.Fatalf("CSV has %d lines, want header + %d samples", len(lines), len(sp.Samples()))
	}
	cols := strings.Count(lines[0], ",") + 1
	for i, l := range lines {
		if c := strings.Count(l, ",") + 1; c != cols {
			t.Fatalf("line %d has %d columns, header has %d", i, c, cols)
		}
	}
}

func TestSamplerJSONRoundTrip(t *testing.T) {
	_, _, sp := runTraced(t, TracerConfig{}, SamplerConfig{Every: 64})
	var buf bytes.Buffer
	if err := sp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string   `json:"schema"`
		Every   uint64   `json:"every"`
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != OccupancySchema {
		t.Fatalf("schema %q", doc.Schema)
	}
	if len(doc.Samples) != len(sp.Samples()) {
		t.Fatalf("round trip kept %d samples, want %d", len(doc.Samples), len(sp.Samples()))
	}
}

func TestMetricsDocument(t *testing.T) {
	m, _, _ := runTraced(t, TracerConfig{}, SamplerConfig{})
	x := CollectMetrics(m, "test-cell", true)
	x.Put("wall_seconds", 1.25)
	x.Put("cache_hits", 3)
	x.Put("wall_seconds", 2.5) // replace, not duplicate
	var buf bytes.Buffer
	if err := x.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc Metrics
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != MetricsSchema || doc.Label != "test-cell" || !doc.Run.Completed {
		t.Fatalf("bad header: %+v", doc)
	}
	if doc.Run.Cycles != m.Cycle() {
		t.Fatalf("cycles %d != %d", doc.Run.Cycles, m.Cycle())
	}
	byName := map[string]CounterRow{}
	for _, row := range doc.Counters {
		byName[row.Event] = row
	}
	if row := byName["uops_retired"]; row.Total != 700 || row.CPU[0]+row.CPU[1] != row.Total {
		t.Fatalf("uops_retired row %+v, want total 700", row)
	}
	if len(doc.Meta) != 2 || doc.Meta[0].Key != "cache_hits" || doc.Meta[1].Key != "wall_seconds" {
		t.Fatalf("meta not sorted/deduped: %+v", doc.Meta)
	}
	if v, ok := doc.Meta[1].Value.(float64); !ok || v != 2.5 {
		t.Fatalf("replaced meta value %v", doc.Meta[1].Value)
	}
}
