package obs

import (
	"encoding/json"
	"io"
	"sort"

	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
)

// MetricsSchema identifies the JSON export format.
const MetricsSchema = "smtexplore/metrics/v1"

// Metrics is the structured snapshot of one run: the full
// performance-monitoring bank, the memory-system attribution and any
// runner-level meta-metrics (wall time, cache effectiveness), in one
// machine-readable document — the artifact counterpart of the paper's
// per-experiment PMC tables.
type Metrics struct {
	Schema string `json:"schema"`
	// Label identifies the measured cell (kernel/mode/size, stream pair,
	// program list, ...).
	Label string  `json:"label,omitempty"`
	Run   RunInfo `json:"run"`
	// Counters lists every perfmon event in declaration order,
	// qualified per logical CPU and summed, zeros included — the schema
	// is stable across workloads.
	Counters []CounterRow `json:"counters"`
	Memory   []MemoryRow  `json:"memory"`
	// Meta holds caller-supplied metrics, sorted by key at export.
	Meta []MetaEntry `json:"meta,omitempty"`
}

// RunInfo describes the simulation extent.
type RunInfo struct {
	Cycles    uint64 `json:"cycles"`
	Completed bool   `json:"completed"`
}

// CounterRow is one perfmon event across both logical CPUs.
type CounterRow struct {
	Event string                  `json:"event"`
	CPU   [smt.NumContexts]uint64 `json:"cpu"`
	Total uint64                  `json:"total"`
}

// MemoryRow is one context's view of the shared cache hierarchy.
type MemoryRow struct {
	CPU          int    `json:"cpu"`
	Accesses     uint64 `json:"accesses"`
	L1Misses     uint64 `json:"l1_misses"`
	L2Misses     uint64 `json:"l2_misses"`
	L2ReadMisses uint64 `json:"l2_read_misses"`
	MSHRRetries  uint64 `json:"mshr_retries"`
}

// MetaEntry is one caller-supplied metric. Values must be JSON scalars
// for the export to stay deterministic.
type MetaEntry struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// CollectMetrics snapshots machine m into a document labelled label.
// completed reports whether every loaded program retired (callers get it
// from RunResult).
func CollectMetrics(m *smt.Machine, label string, completed bool) *Metrics {
	x := &Metrics{
		Schema: MetricsSchema,
		Label:  label,
		Run:    RunInfo{Cycles: m.Cycle(), Completed: completed},
	}
	snap := m.Counters().Snapshot()
	for _, ev := range perfmon.Events() {
		row := CounterRow{Event: ev.String(), Total: snap.Total(ev)}
		for tid := 0; tid < smt.NumContexts; tid++ {
			row.CPU[tid] = snap.Get(ev, tid)
		}
		x.Counters = append(x.Counters, row)
	}
	for tid := 0; tid < smt.NumContexts; tid++ {
		ts := m.Hierarchy().Thread(tid)
		x.Memory = append(x.Memory, MemoryRow{
			CPU:          tid,
			Accesses:     ts.Accesses,
			L1Misses:     ts.L1Misses,
			L2Misses:     ts.L2Misses,
			L2ReadMisses: ts.L2ReadMisses,
			MSHRRetries:  ts.MSHRRetries,
		})
	}
	return x
}

// Put adds (or replaces) a meta-metric.
func (x *Metrics) Put(key string, value any) {
	for i := range x.Meta {
		if x.Meta[i].Key == key {
			x.Meta[i].Value = value
			return
		}
	}
	x.Meta = append(x.Meta, MetaEntry{Key: key, Value: value})
}

// WriteJSON emits the document, meta entries sorted by key.
func (x *Metrics) WriteJSON(w io.Writer) error {
	sort.Slice(x.Meta, func(i, j int) bool { return x.Meta[i].Key < x.Meta[j].Key })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(x)
}
