package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
)

// SamplerConfig parameterises a Sampler.
type SamplerConfig struct {
	// Every is the sampling period in cycles (≤0 → 128). A period of 1
	// samples every cycle, which the conservation tests use to reconcile
	// the series against the counter bank exactly.
	Every uint64
	// Max bounds the retained samples (≤0 → 4096, must be even). When
	// the series fills, the period doubles and the series decimates in
	// place — accumulated deltas fold into the surviving samples, so
	// window sums stay exact over arbitrarily long runs at bounded
	// memory.
	Max int
}

// Sample is one point of the occupancy time series: the instantaneous
// resource state at its cycle plus event deltas accumulated over the
// window since the previous sample. Delta fields are conserved across
// decimation — summing any of them over the whole series equals the
// final counter value.
type Sample struct {
	// Cycle is the cycle the instantaneous state was captured at.
	Cycle uint64 `json:"cycle"`
	// Window is the number of cycles the delta fields cover.
	Window uint64 `json:"window"`
	// State is the instantaneous occupancy snapshot.
	State smt.OccState `json:"state"`
	// Per-context counter deltas over the window.
	ActiveCycles [smt.NumContexts]uint64 `json:"active_cycles"`
	HaltedCycles [smt.NumContexts]uint64 `json:"halted_cycles"`
	IssuedUops   [smt.NumContexts]uint64 `json:"issued_uops"`
	UopsRetired  [smt.NumContexts]uint64 `json:"uops_retired"`
	L2Misses     [smt.NumContexts]uint64 `json:"l2_misses"`
	ResourceSt   [smt.NumContexts]uint64 `json:"resource_stall_cycles"`
}

// Sampler produces the occupancy time series of a run. Attach it before
// running and call Finish afterwards to flush the final partial window.
type Sampler struct {
	every   uint64
	max     int
	m       *smt.Machine
	samples []Sample
	last    perfmon.Snapshot
	ticks   uint64 // cycles observed since Attach
	lastTck uint64 // ticks at the previous sample
	chain   func()
}

// NewSampler builds a sampler for the given configuration.
func NewSampler(cfg SamplerConfig) *Sampler {
	every := cfg.Every
	if every == 0 {
		every = 128
	}
	max := cfg.Max
	if max <= 0 {
		max = 4096
	}
	if max%2 != 0 {
		max++ // decimation halves the series; keep it pairable
	}
	return &Sampler{every: every, max: max}
}

// Every returns the current sampling period (grows under decimation).
func (s *Sampler) Every() uint64 { return s.every }

// Attach installs the sampler as the machine's per-cycle observer,
// chaining to any observer already installed.
func (s *Sampler) Attach(m *smt.Machine) {
	s.m = m
	s.last = m.Counters().Snapshot()
	s.chain = m.CycleObserver()
	m.OnCycle(s.tick)
}

func (s *Sampler) tick() {
	s.ticks++
	if s.ticks%s.every == 0 {
		s.take()
	}
	if s.chain != nil {
		s.chain()
	}
}

// take captures one sample at the current machine state.
func (s *Sampler) take() {
	snap := s.m.Counters().Snapshot()
	d := snap.Delta(s.last)
	smp := Sample{
		Cycle:  s.m.Cycle(),
		Window: s.ticks - s.lastTck,
		State:  s.m.OccState(),
	}
	for tid := 0; tid < smt.NumContexts; tid++ {
		smp.ActiveCycles[tid] = d.Get(perfmon.Cycles, tid)
		smp.HaltedCycles[tid] = d.Get(perfmon.HaltedCycles, tid)
		smp.IssuedUops[tid] = d.Get(perfmon.IssuedUops, tid)
		smp.UopsRetired[tid] = d.Get(perfmon.UopsRetired, tid)
		smp.L2Misses[tid] = d.Get(perfmon.L2Misses, tid)
		smp.ResourceSt[tid] = d.Get(perfmon.ResourceStallCycles, tid)
	}
	s.last = snap
	s.lastTck = s.ticks
	s.samples = append(s.samples, smp)
	if len(s.samples) >= s.max {
		s.decimate()
	}
}

// decimate halves the series, folding each dropped sample's deltas into
// its surviving successor (windows merge; instantaneous state keeps the
// survivor's), and doubles the sampling period.
func (s *Sampler) decimate() {
	half := len(s.samples) / 2
	for j := 0; j < half; j++ {
		keep := s.samples[2*j+1]
		drop := s.samples[2*j]
		keep.Window += drop.Window
		for tid := 0; tid < smt.NumContexts; tid++ {
			keep.ActiveCycles[tid] += drop.ActiveCycles[tid]
			keep.HaltedCycles[tid] += drop.HaltedCycles[tid]
			keep.IssuedUops[tid] += drop.IssuedUops[tid]
			keep.UopsRetired[tid] += drop.UopsRetired[tid]
			keep.L2Misses[tid] += drop.L2Misses[tid]
			keep.ResourceSt[tid] += drop.ResourceSt[tid]
		}
		s.samples[j] = keep
	}
	s.samples = s.samples[:half]
	s.every *= 2
}

// Finish flushes the partial window since the last periodic sample, so
// the series covers the full run exactly. Call once after the run;
// further cycles keep sampling normally.
func (s *Sampler) Finish() {
	if s.m != nil && s.ticks > s.lastTck {
		s.take()
	}
}

// Samples returns the retained series, oldest first.
func (s *Sampler) Samples() []Sample { return s.samples }

// csvHeader matches the WriteCSV row layout.
var csvHeader = "cycle,window," +
	"sched0,sched1,rob0,rob1,loadq0,loadq1,storeq0,storeq1,mshr_inflight," +
	"active0,active1,halted0,halted1," +
	"active_cycles0,active_cycles1,halted_cycles0,halted_cycles1," +
	"issued0,issued1,retired0,retired1,l2_misses0,l2_misses1," +
	"resource_stall0,resource_stall1"

// WriteCSV emits the series as one CSV row per sample.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	for _, p := range s.samples {
		st := p.State
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.Cycle, p.Window,
			st.Sched[0], st.Sched[1], st.ROB[0], st.ROB[1],
			st.LoadQ[0], st.LoadQ[1], st.StoreQ[0], st.StoreQ[1], st.InflightFills,
			b01(st.Active[0]), b01(st.Active[1]), b01(st.Halted[0]), b01(st.Halted[1]),
			p.ActiveCycles[0], p.ActiveCycles[1], p.HaltedCycles[0], p.HaltedCycles[1],
			p.IssuedUops[0], p.IssuedUops[1], p.UopsRetired[0], p.UopsRetired[1],
			p.L2Misses[0], p.L2Misses[1], p.ResourceSt[0], p.ResourceSt[1])
		if err != nil {
			return err
		}
	}
	return nil
}

// occupancyDoc is the JSON container of a series.
type occupancyDoc struct {
	Schema  string   `json:"schema"`
	Every   uint64   `json:"every"`
	Samples []Sample `json:"samples"`
}

// OccupancySchema identifies the JSON export format.
const OccupancySchema = "smtexplore/occupancy/v1"

// WriteJSON emits the series as one JSON document.
func (s *Sampler) WriteJSON(w io.Writer) error {
	samples := s.samples
	if samples == nil {
		samples = []Sample{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(occupancyDoc{Schema: OccupancySchema, Every: s.every, Samples: samples})
}
