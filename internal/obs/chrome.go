package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"smtexplore/internal/smt"
)

// TraceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps are nominally microseconds; the exporter writes core cycles
// directly, so one trace microsecond reads as one cycle.
type TraceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object flavour of the trace container, the
// form Perfetto and chrome://tracing both load.
type ChromeTrace struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// sharedPid is the trace "process" holding resources shared by both
// hardware contexts (MSHR/outstanding-fill counters).
const sharedPid = smt.NumContexts

// BuildChromeTrace lays the lifecycle spans out as one Perfetto process
// per hardware context with non-overlapping lanes (threads): each µop is
// a complete slice from allocation to retirement, carrying its issue and
// completion cycles, execution unit and spin provenance as args. An
// optional occupancy series adds counter tracks (per-context buffer
// occupancy, shared outstanding fills) to the same trace. The layout is
// deterministic: identical inputs yield identical traces.
func BuildChromeTrace(spans []smt.RetireInfo, occ []Sample) ChromeTrace {
	ct := ChromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"source": "smtexplore pipeline tracer", "time_unit": "cycles"},
		TraceEvents:     []TraceEvent{},
	}

	// Stable presentation order: by allocation cycle, retirement order
	// breaking ties (SliceStable keeps the deterministic input order).
	ordered := append([]smt.RetireInfo(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].AllocCycle < ordered[j].AllocCycle
	})

	// Greedy first-fit lane assignment per context: a lane is free once
	// its previous µop has retired, so slices on one lane never overlap
	// and Perfetto renders each lane as a clean row.
	laneEnd := [smt.NumContexts][]uint64{}
	for _, ri := range ordered {
		lanes := laneEnd[ri.Tid]
		lane := -1
		for l, end := range lanes {
			if end <= ri.AllocCycle {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(lanes)
			laneEnd[ri.Tid] = append(lanes, 0)
		}
		laneEnd[ri.Tid][lane] = ri.Cycle
		cat := "uop"
		if ri.Spin {
			cat = "spin"
		}
		ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
			Name: ri.Instr.String(),
			Cat:  cat,
			Ph:   "X",
			Ts:   ri.AllocCycle,
			Dur:  ri.Cycle - ri.AllocCycle,
			Pid:  ri.Tid,
			Tid:  lane,
			Args: map[string]any{
				"alloc":    ri.AllocCycle,
				"issue":    ri.IssueCycle,
				"complete": ri.CompleteCycle,
				"retire":   ri.Cycle,
				"unit":     ri.Unit.String(),
				"spin":     ri.Spin,
			},
		})
	}

	// Occupancy counter tracks ride along when a series is supplied.
	for _, s := range occ {
		for tid := 0; tid < smt.NumContexts; tid++ {
			ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
				Name: "occupancy",
				Ph:   "C",
				Ts:   s.Cycle,
				Pid:  tid,
				Tid:  0,
				Args: map[string]any{
					"sched":  s.State.Sched[tid],
					"rob":    s.State.ROB[tid],
					"loadq":  s.State.LoadQ[tid],
					"storeq": s.State.StoreQ[tid],
				},
			})
		}
		ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
			Name: "outstanding fills",
			Ph:   "C",
			Ts:   s.Cycle,
			Pid:  sharedPid,
			Tid:  0,
			Args: map[string]any{"mshr": s.State.InflightFills},
		})
	}

	// Metadata names the processes and lanes.
	for tid := 0; tid < smt.NumContexts; tid++ {
		ct.TraceEvents = append(ct.TraceEvents, metaEvent("process_name", tid, 0, fmt.Sprintf("cpu%d", tid)))
		for lane := range laneEnd[tid] {
			ct.TraceEvents = append(ct.TraceEvents, metaEvent("thread_name", tid, lane, fmt.Sprintf("lane %02d", lane)))
		}
	}
	if len(occ) > 0 {
		ct.TraceEvents = append(ct.TraceEvents, metaEvent("process_name", sharedPid, 0, "shared"))
	}
	return ct
}

func metaEvent(kind string, pid, tid int, name string) TraceEvent {
	return TraceEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
}

// Write emits the trace as JSON. Marshalling is deterministic (struct
// field order; map keys sorted by encoding/json).
func (ct ChromeTrace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// WriteChromeTrace is the one-call export: spans (plus an optional
// occupancy series) to Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, spans []smt.RetireInfo, occ []Sample) error {
	return BuildChromeTrace(spans, occ).Write(w)
}
