package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/obs"
	"smtexplore/internal/runner"
	"smtexplore/internal/streams"
)

func artifactSet(t *testing.T, dir, label string) {
	t.Helper()
	for _, suffix := range []string{".trace.json", ".occupancy.csv", ".metrics.json"} {
		p := filepath.Join(dir, obs.Slug(label)+suffix)
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestObserveStreamCellWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	opt := Options{
		Workers: 1,
		Cache:   runner.NewCache(),
		Observe: &Observe{Dir: dir, SampleEvery: 64},
	}
	specs := []streams.Spec{{Kind: streams.FAddS, ILP: streams.MaxILP}}
	if _, err := opt.measureCPI(StreamMachineConfig(), specs, 10_000); err != nil {
		t.Fatal(err)
	}
	artifactSet(t, dir, "fadd-maxILP@10000")
}

// TestObserveBypassesCache seeds the cache with the cell, then observes
// the same cell: were the cache consulted, the simulation would be
// skipped and no artifacts produced.
func TestObserveBypassesCache(t *testing.T) {
	cache := runner.NewCache()
	specs := []streams.Spec{{Kind: streams.IAddS, ILP: streams.MedILP}}
	plain := Options{Workers: 1, Cache: cache}
	want, err := plain.measureCPI(StreamMachineConfig(), specs, 10_000)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	observed := Options{
		Workers: 1,
		Cache:   cache,
		Observe: &Observe{Dir: dir, SampleEvery: 64},
	}
	got, err := observed.measureCPI(StreamMachineConfig(), specs, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	artifactSet(t, dir, "iadd-medILP@10000")
	// Simulations are deterministic, so the re-simulated cell must agree
	// with the cached result — observation alters artifacts, not data.
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("observed CPI %v != cached %v", got, want)
	}
	// The observed run must not have polluted the cache counters with a
	// hit (bypass means no lookup at all).
	if st := cache.Stats(); st.Hits != 0 {
		t.Fatalf("observed cell hit the cache: %+v", st)
	}
}

func TestObserveMatchFiltersCells(t *testing.T) {
	dir := t.TempDir()
	opt := Options{
		Workers: 1,
		Observe: &Observe{Dir: dir, Match: MatchSubstring("fmul"), SampleEvery: 64},
	}
	mcfg := StreamMachineConfig()
	if _, err := opt.measureCPI(mcfg, []streams.Spec{{Kind: streams.FAddS, ILP: streams.MaxILP}}, 10_000); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.measureCPI(mcfg, []streams.Spec{{Kind: streams.FMulS, ILP: streams.MaxILP}}, 10_000); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !MatchSubstring("fmul")(e.Name()) {
			t.Errorf("unmatched cell left artifact %s", e.Name())
		}
	}
	artifactSet(t, dir, "fmul-maxILP@10000")
}

func TestObserveKernelCellWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	opt := Options{
		Workers: 1,
		Cache:   runner.NewCache(),
		Observe: &Observe{Dir: dir, SampleEvery: 64},
	}
	km, err := opt.runKernel("obs-test-mm", func() (Builder, error) {
		return mm.New(mm.DefaultConfig(16))
	}, kernels.Serial, KernelMachineConfig(), "mm/serial/16-obs")
	if err != nil {
		t.Fatal(err)
	}
	if km.Cycles == 0 {
		t.Fatal("kernel reported zero cycles")
	}
	artifactSet(t, dir, "mm-serial-16-obs")
}
