package experiments

import (
	"fmt"
	"strings"

	"smtexplore/internal/kernels"
	"smtexplore/internal/profile"
	"smtexplore/internal/streams"
)

// FormatFig1 renders the Figure 1 rows grouped by stream, one line per
// TLP×ILP mode, in the paper's presentation order.
func FormatFig1(rows []Fig1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — average CPI per stream under TLP×ILP modes\n")
	fmt.Fprintf(&b, "%-10s %-8s %8s %8s\n", "stream", "ilp", "1thr", "2thr")
	type key struct {
		k   streams.Kind
		ilp streams.ILP
	}
	solo := map[key]float64{}
	duo := map[key]float64{}
	var order []key
	for _, r := range rows {
		kk := key{r.Stream, r.ILP}
		if _, seen := solo[kk]; !seen {
			if _, seen2 := duo[kk]; !seen2 {
				order = append(order, kk)
			}
		}
		if r.Threads == 1 {
			solo[kk] = r.CPI
		} else {
			duo[kk] = r.CPI
		}
	}
	for _, kk := range order {
		fmt.Fprintf(&b, "%-10s %-8s %8.2f %8.2f\n", kk.k, kk.ilp, solo[kk], duo[kk])
	}
	return b.String()
}

// FormatFig2 renders a Figure 2 panel as a slowdown matrix per ILP level:
// rows are the subject stream (the one whose slowdown is measured),
// columns the co-executing partner.
func FormatFig2(title string, cells []Fig2Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — co-execution slowdown factors (CoCPI/SoloCPI - 1)\n", title)
	byILP := map[streams.ILP][]Fig2Cell{}
	for _, c := range cells {
		byILP[c.ILP] = append(byILP[c.ILP], c)
	}
	for _, ilp := range streams.Levels() {
		group := byILP[ilp]
		if len(group) == 0 {
			continue
		}
		var subjects, partners []streams.Kind
		seenS, seenP := map[streams.Kind]bool{}, map[streams.Kind]bool{}
		for _, c := range group {
			if !seenS[c.Subject] {
				seenS[c.Subject] = true
				subjects = append(subjects, c.Subject)
			}
			if !seenP[c.Partner] {
				seenP[c.Partner] = true
				partners = append(partners, c.Partner)
			}
		}
		val := map[[2]streams.Kind]float64{}
		for _, c := range group {
			val[[2]streams.Kind{c.Subject, c.Partner}] = c.Slowdown
		}
		fmt.Fprintf(&b, "\n[%v] subject \\ partner\n%-10s", ilp, "")
		for _, p := range partners {
			fmt.Fprintf(&b, "%9s", p.String())
		}
		fmt.Fprintln(&b)
		for _, s := range subjects {
			fmt.Fprintf(&b, "%-10s", s.String())
			for _, p := range partners {
				fmt.Fprintf(&b, "%8.0f%%", val[[2]streams.Kind{s, p}]*100)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// FormatKernelFigure renders a Figure 3/4/5 metrics list as the paper's
// four panels: execution time (with the factor relative to serial), L2
// misses under the paper's reporting convention, resource stall cycles,
// and µops retired.
func FormatKernelFigure(title string, ms []KernelMetrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %-16s %12s %8s %12s %12s %12s\n",
		"instance", "method", "cycles", "vs-ser", "l2-misses", "stalls", "uops")
	for _, m := range ms {
		rel := "-"
		if s, ok := SerialOf(ms, m.Label); ok && m.Mode != kernels.Serial {
			rel = fmt.Sprintf("%.2fx", Relative(m, s))
		}
		fmt.Fprintf(&b, "%-22s %-16s %12d %8s %12d %12d %12d\n",
			m.Label, m.Mode, m.Cycles, rel, m.L2MissesReported(),
			m.ResourceStallCycles, m.UopsRetired)
	}
	return b.String()
}

// FormatTable1 renders the Table 1 columns in the paper's layout: one
// block per kernel with serial/tlp/spr columns.
func FormatTable1(cols []Table1Column) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1 — processor subunit utilisation per instrumented thread")
	byKernel := map[string][]Table1Column{}
	var order []string
	for _, c := range cols {
		if _, seen := byKernel[c.Kernel]; !seen {
			order = append(order, c.Kernel)
		}
		byKernel[c.Kernel] = append(byKernel[c.Kernel], c)
	}
	for _, k := range order {
		group := byKernel[k]
		fmt.Fprintf(&b, "\n%s %-12s", k, "EX. UNIT")
		for _, c := range group {
			fmt.Fprintf(&b, "%10s", c.Mode)
		}
		fmt.Fprintln(&b)
		for _, row := range profile.Rows() {
			// Suppress all-zero rows (e.g. FP_MOVE for MM/LU).
			allZero := true
			for _, c := range group {
				if c.Share[row] > 0.005 {
					allZero = false
				}
			}
			if allZero {
				continue
			}
			fmt.Fprintf(&b, "   %-12s", row.String()+":")
			for _, c := range group {
				fmt.Fprintf(&b, "%9.2f%%", c.Share[row])
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "   %-12s", "Total instr:")
		for _, c := range group {
			fmt.Fprintf(&b, "%10d", c.TotalInstr)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
