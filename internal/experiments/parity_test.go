package experiments

import (
	"context"
	"testing"

	"smtexplore/internal/runner"
)

// The determinism contract of the concurrent runner: for every harness,
// the parallel path must produce output byte-identical to -workers=1,
// with and without the result cache. The tests compare the *formatted*
// figures — the exact bytes a user sees — not just the row structs.

func fig1Parity(t *testing.T, opt Options) string {
	t.Helper()
	rows, err := Fig1(context.Background(), opt, StreamMachineConfig(), Fig1Kinds())
	if err != nil {
		t.Fatal(err)
	}
	return FormatFig1(rows)
}

func TestFig1ParallelByteIdenticalToSerial(t *testing.T) {
	serial := fig1Parity(t, Options{Workers: 1})
	for _, opt := range []Options{
		{Workers: 8},
		{Workers: 8, Cache: runner.NewCache()},
		{Workers: 3, Cache: runner.NewCache()},
	} {
		if got := fig1Parity(t, opt); got != serial {
			t.Errorf("Fig1 with %+v diverged from workers=1:\n--- serial ---\n%s--- parallel ---\n%s", opt, serial, got)
		}
	}
}

func TestFig2aParallelByteIdenticalToSerial(t *testing.T) {
	run := func(opt Options) string {
		cells, err := Fig2a(context.Background(), opt, StreamMachineConfig())
		if err != nil {
			t.Fatal(err)
		}
		return FormatFig2("Figure 2(a) — floating-point streams", cells)
	}
	serial := run(Options{Workers: 1})
	cache := runner.NewCache()
	if got := run(Options{Workers: 8, Cache: cache}); got != serial {
		t.Errorf("Fig2a workers=8 diverged from workers=1:\n--- serial ---\n%s--- parallel ---\n%s", serial, got)
	}
	// A second pass over a warm cache must serve every cell from memory
	// and still render the same bytes.
	before := cache.Stats()
	if got := run(Options{Workers: 8, Cache: cache}); got != serial {
		t.Error("warm-cache rerun diverged")
	}
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Errorf("warm-cache rerun recomputed %d cells", after.Misses-before.Misses)
	}
	if after.Hits <= before.Hits {
		t.Error("warm-cache rerun recorded no hits")
	}
}

func TestKernelFigureParallelByteIdenticalToSerial(t *testing.T) {
	run := func(opt Options) string {
		ms, err := Fig3MM(context.Background(), opt, []int{32})
		if err != nil {
			t.Fatal(err)
		}
		lu, err := Fig4LU(context.Background(), opt, []int{32})
		if err != nil {
			t.Fatal(err)
		}
		return FormatKernelFigure("Figure 3 — MM", ms) + FormatKernelFigure("Figure 4 — LU", lu)
	}
	serial := run(Options{Workers: 1})
	if got := run(Options{Workers: 8, Cache: runner.NewCache()}); got != serial {
		t.Errorf("kernel figures diverged from workers=1:\n--- serial ---\n%s--- parallel ---\n%s", serial, got)
	}
}

func TestFig2SharedCacheReusesFig1Cells(t *testing.T) {
	// Fig1's duo cells reappear as Fig2 diagonal cells and its solos as
	// Fig2 baselines; a shared cache must serve them without recompute.
	cache := runner.NewCache()
	opt := Options{Workers: 4, Cache: cache}
	if _, err := Fig2(context.Background(), opt, StreamMachineConfig(), Fig1Kinds(), Fig1Kinds()); err != nil {
		t.Fatal(err)
	}
	afterFig2 := cache.Stats()
	if _, err := Fig1(context.Background(), opt, StreamMachineConfig(), Fig1Kinds()); err != nil {
		t.Fatal(err)
	}
	afterFig1 := cache.Stats()
	// Fig1 adds no simulations beyond what Fig2 already ran: every solo
	// and every (k,k) duo is a repeat.
	if afterFig1.Misses != afterFig2.Misses {
		t.Errorf("Fig1 after Fig2 recomputed %d cells, want 0 (full overlap)", afterFig1.Misses-afterFig2.Misses)
	}
	if afterFig1.Hits <= afterFig2.Hits {
		t.Error("Fig1 after Fig2 recorded no cache hits")
	}
}

func TestHarnessCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig1(ctx, DefaultOptions(), StreamMachineConfig(), Fig1Kinds()); err == nil {
		t.Error("Fig1 ignored a cancelled context")
	}
	if _, err := Fig3MM(ctx, DefaultOptions(), []int{32}); err == nil {
		t.Error("Fig3MM ignored a cancelled context")
	}
	if _, err := SelectiveHaltLU(ctx, DefaultOptions(), 32); err == nil {
		t.Error("SelectiveHaltLU ignored a cancelled context")
	}
}
