package experiments

import (
	"fmt"
	"strings"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/syncprim"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Study   string
	Variant string
	Metrics KernelMetrics
}

// AblateSync contrasts the paper's §3.1 synchronisation primitives on a
// barrier-heavy workload (the MM precomputation scheme, whose prefetcher
// waits at every span): an aggressive spin-wait, the pause-augmented spin
// the paper recommends, and the halt-based wait that relinquishes the
// partitioned resources.
func AblateSync() ([]AblationRow, error) {
	var out []AblationRow
	for _, kind := range []syncprim.WaitKind{syncprim.SpinRaw, syncprim.SpinPause, syncprim.HaltWait} {
		cfg := mm.DefaultConfig(64)
		cfg.PrefetchWait = kind
		k, err := mm.New(cfg)
		if err != nil {
			return nil, err
		}
		met, err := RunKernel(k, kernels.TLPPfetch, KernelMachineConfig(), "mm N=64")
		if err != nil {
			return nil, fmt.Errorf("ablate sync %v: %w", kind, err)
		}
		out = append(out, AblationRow{Study: "sync", Variant: kind.String(), Metrics: met})
	}
	return out, nil
}

// AblateSpan sweeps the precomputation-span size of the MM SPR scheme
// (§3.2: the span must be large enough to stay ahead but small enough that
// prefetched lines survive until consumed; the paper bounds it between
// 1/A and 1/2 of the L2 capacity).
func AblateSpan() ([]AblationRow, error) {
	var out []AblationRow
	for _, span := range []int{1, 2, 4, 8, 16} {
		cfg := mm.DefaultConfig(64)
		cfg.SpanSteps = span
		k, err := mm.New(cfg)
		if err != nil {
			return nil, err
		}
		met, err := RunKernel(k, kernels.TLPPfetch, KernelMachineConfig(), "mm N=64")
		if err != nil {
			return nil, fmt.Errorf("ablate span %d: %w", span, err)
		}
		out = append(out, AblationRow{
			Study:   "span",
			Variant: fmt.Sprintf("%d steps (%d KB)", span, span*2*2048/1024),
			Metrics: met,
		})
	}
	return out, nil
}

// AblatePartition contrasts the statically partitioned buffers of the
// hyper-threaded core against a hypothetical fully shared organisation
// (§5.3 blames static partitioning for much of the observed contention).
func AblatePartition() ([]AblationRow, error) {
	var out []AblationRow
	for _, shared := range []bool{false, true} {
		mcfg := KernelMachineConfig()
		mcfg.NoStaticPartition = shared
		variant := "static (halved per thread)"
		if shared {
			variant = "fully shared"
		}
		for _, mode := range []kernels.Mode{kernels.TLPCoarse, kernels.TLPPfetch} {
			k, err := mm.New(mm.DefaultConfig(64))
			if err != nil {
				return nil, err
			}
			met, err := RunKernel(k, mode, mcfg, "mm N=64")
			if err != nil {
				return nil, fmt.Errorf("ablate partition %v/%v: %w", shared, mode, err)
			}
			out = append(out, AblationRow{
				Study:   "partition",
				Variant: fmt.Sprintf("%s, %v", variant, mode),
				Metrics: met,
			})
		}
	}
	return out, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-34s %12s %12s %12s %10s %10s\n",
		"variant", "cycles", "l2miss(w)", "uops", "spin-uops", "halts")
	for _, r := range rows {
		m := r.Metrics
		fmt.Fprintf(&b, "%-34s %12d %12d %12d %10d %10d\n",
			r.Variant, m.Cycles, m.L2ReadMissesWorker, m.UopsRetired, m.SpinUops, m.HaltTransitions)
	}
	return b.String()
}
