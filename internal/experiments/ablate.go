package experiments

import (
	"context"
	"fmt"
	"strings"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/runner"
	"smtexplore/internal/syncprim"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Study   string
	Variant string
	Metrics KernelMetrics
}

// AblateSync contrasts the paper's §3.1 synchronisation primitives on a
// barrier-heavy workload (the MM precomputation scheme, whose prefetcher
// waits at every span): an aggressive spin-wait, the pause-augmented spin
// the paper recommends, and the halt-based wait that relinquishes the
// partitioned resources.
func AblateSync(ctx context.Context, opt Options) ([]AblationRow, error) {
	kinds := []syncprim.WaitKind{syncprim.SpinRaw, syncprim.SpinPause, syncprim.HaltWait}
	mcfg := KernelMachineConfig()
	return runner.Map(ctx, opt.Workers, kinds, func(_ context.Context, kind syncprim.WaitKind) (AblationRow, error) {
		cfg := mm.DefaultConfig(64)
		cfg.PrefetchWait = kind
		met, err := opt.runKernel(
			runner.Key("kernel", mcfg, "mm", cfg, kernels.TLPPfetch, "mm N=64"),
			func() (Builder, error) { return mm.New(cfg) },
			kernels.TLPPfetch, mcfg, "mm N=64")
		if err != nil {
			return AblationRow{}, fmt.Errorf("ablate sync %v: %w", kind, err)
		}
		return AblationRow{Study: "sync", Variant: kind.String(), Metrics: met}, nil
	})
}

// AblateSpan sweeps the precomputation-span size of the MM SPR scheme
// (§3.2: the span must be large enough to stay ahead but small enough that
// prefetched lines survive until consumed; the paper bounds it between
// 1/A and 1/2 of the L2 capacity).
func AblateSpan(ctx context.Context, opt Options) ([]AblationRow, error) {
	mcfg := KernelMachineConfig()
	return runner.Map(ctx, opt.Workers, []int{1, 2, 4, 8, 16}, func(_ context.Context, span int) (AblationRow, error) {
		cfg := mm.DefaultConfig(64)
		cfg.SpanSteps = span
		met, err := opt.runKernel(
			runner.Key("kernel", mcfg, "mm", cfg, kernels.TLPPfetch, "mm N=64"),
			func() (Builder, error) { return mm.New(cfg) },
			kernels.TLPPfetch, mcfg, "mm N=64")
		if err != nil {
			return AblationRow{}, fmt.Errorf("ablate span %d: %w", span, err)
		}
		return AblationRow{
			Study:   "span",
			Variant: fmt.Sprintf("%d steps (%d KB)", span, span*2*2048/1024),
			Metrics: met,
		}, nil
	})
}

// AblatePartition contrasts the statically partitioned buffers of the
// hyper-threaded core against a hypothetical fully shared organisation
// (§5.3 blames static partitioning for much of the observed contention).
func AblatePartition(ctx context.Context, opt Options) ([]AblationRow, error) {
	type cell struct {
		shared bool
		mode   kernels.Mode
	}
	var cells []cell
	for _, shared := range []bool{false, true} {
		for _, mode := range []kernels.Mode{kernels.TLPCoarse, kernels.TLPPfetch} {
			cells = append(cells, cell{shared, mode})
		}
	}
	return runner.Map(ctx, opt.Workers, cells, func(_ context.Context, c cell) (AblationRow, error) {
		mcfg := KernelMachineConfig()
		mcfg.NoStaticPartition = c.shared
		variant := "static (halved per thread)"
		if c.shared {
			variant = "fully shared"
		}
		cfg := mm.DefaultConfig(64)
		met, err := opt.runKernel(
			runner.Key("kernel", mcfg, "mm", cfg, c.mode, "mm N=64"),
			func() (Builder, error) { return mm.New(cfg) },
			c.mode, mcfg, "mm N=64")
		if err != nil {
			return AblationRow{}, fmt.Errorf("ablate partition %v/%v: %w", c.shared, c.mode, err)
		}
		return AblationRow{
			Study:   "partition",
			Variant: fmt.Sprintf("%s, %v", variant, c.mode),
			Metrics: met,
		}, nil
	})
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-34s %12s %12s %12s %10s %10s\n",
		"variant", "cycles", "l2miss(w)", "uops", "spin-uops", "halts")
	for _, r := range rows {
		m := r.Metrics
		fmt.Fprintf(&b, "%-34s %12d %12d %12d %10d %10d\n",
			r.Variant, m.Cycles, m.L2ReadMissesWorker, m.UopsRetired, m.SpinUops, m.HaltTransitions)
	}
	return b.String()
}
