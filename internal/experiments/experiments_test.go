package experiments

import (
	"context"
	"strings"
	"testing"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

func TestMeasureCPISolo(t *testing.T) {
	cpi, err := MeasureCPI(StreamMachineConfig(),
		[]streams.Spec{{Kind: streams.FAddS, ILP: streams.MaxILP}}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if cpi[0] < 0.8 || cpi[0] > 1.4 {
		t.Errorf("max-ILP fadd CPI = %.2f, want ≈1 (FP port bound)", cpi[0])
	}
}

func TestMeasureCPIValidation(t *testing.T) {
	if _, err := MeasureCPI(StreamMachineConfig(), nil, 1000); err == nil {
		t.Error("empty spec list accepted")
	}
	three := []streams.Spec{{Kind: streams.FAddS, ILP: 1}, {Kind: streams.FAddS, ILP: 1}, {Kind: streams.FAddS, ILP: 1}}
	if _, err := MeasureCPI(StreamMachineConfig(), three, 1000); err == nil {
		t.Error("three streams accepted")
	}
}

func TestFig1ShapesMatchPaper(t *testing.T) {
	rows, err := Fig1(context.Background(), DefaultOptions(), StreamMachineConfig(), []streams.Kind{streams.FAddS, streams.IAddS, streams.ILoadS})
	if err != nil {
		t.Fatal(err)
	}
	get := func(k streams.Kind, ilp streams.ILP, threads int) float64 {
		for _, r := range rows {
			if r.Stream == k && r.ILP == ilp && r.Threads == threads {
				return r.CPI
			}
		}
		t.Fatalf("missing row %v/%v/%d", k, ilp, threads)
		return 0
	}
	// fadd: best throughput in 1thr-maxILP; min-ILP CPI barely moves from
	// 1 to 2 threads (the Figure 1 discussion).
	if best := get(streams.FAddS, streams.MaxILP, 1); best > 1.4 {
		t.Errorf("fadd 1thr-maxILP CPI %.2f, want ≈1", best)
	}
	minSolo := get(streams.FAddS, streams.MinILP, 1)
	minDuo := get(streams.FAddS, streams.MinILP, 2)
	if minDuo > minSolo*1.15 {
		t.Errorf("fadd min-ILP CPI grew %.2f→%.2f on co-execution; paper has it flat", minSolo, minDuo)
	}
	// 2thr-medILP must not beat 1thr-maxILP throughput (W_fadd6 insight):
	// aggregate throughput 2/cpi(duo) ≤ 1/cpi(solo-max) with slack.
	duoMed := get(streams.FAddS, streams.MedILP, 2)
	soloMax := get(streams.FAddS, streams.MaxILP, 1)
	if 2/duoMed > 1.1*(1/soloMax) {
		t.Errorf("splitting the fadd window across threads (%.2f agg) beat 1thr-maxILP (%.2f)", 2/duoMed, 1/soloMax)
	}
	// iadd: ~100% slowdown on co-execution (front-end bound).
	iaddSolo := get(streams.IAddS, streams.MaxILP, 1)
	iaddDuo := get(streams.IAddS, streams.MaxILP, 2)
	if ratio := iaddDuo / iaddSolo; ratio < 1.7 || ratio > 2.4 {
		t.Errorf("iadd co-execution slowdown ratio %.2f, want ≈2 (serialisation)", ratio)
	}
	// iload: HT favours TLP — cumulative dual-thread throughput is
	// strictly better at min ILP (latency-bound chains overlap) and at
	// least as good at max ILP (both saturate the load port).
	minIlSolo := get(streams.ILoadS, streams.MinILP, 1)
	minIlDuo := get(streams.ILoadS, streams.MinILP, 2)
	if 2/minIlDuo <= 1.2*(1/minIlSolo) {
		t.Errorf("min-ILP iload cumulative throughput did not clearly improve with 2 threads (solo %.2f, duo %.2f)", minIlSolo, minIlDuo)
	}
	maxIlSolo := get(streams.ILoadS, streams.MaxILP, 1)
	maxIlDuo := get(streams.ILoadS, streams.MaxILP, 2)
	if 2/maxIlDuo < 0.9*(1/maxIlSolo) {
		t.Errorf("max-ILP iload cumulative throughput regressed with 2 threads (solo %.2f, duo %.2f)", maxIlSolo, maxIlDuo)
	}
}

func TestFig2FPPanelShapes(t *testing.T) {
	cells, err := Fig2(context.Background(), DefaultOptions(), StreamMachineConfig(),
		[]streams.Kind{streams.FAddS, streams.FDivS},
		[]streams.Kind{streams.FAddS, streams.FMulS, streams.FDivS})
	if err != nil {
		t.Fatal(err)
	}
	get := func(s, p streams.Kind, ilp streams.ILP) float64 {
		for _, c := range cells {
			if c.Subject == s && c.Partner == p && c.ILP == ilp {
				return c.Slowdown
			}
		}
		t.Fatalf("missing cell %v×%v/%v", s, p, ilp)
		return 0
	}
	// fdiv is slowed substantially by fdiv (the unpipelined divider) and
	// stays ILP-insensitive.
	dd := get(streams.FDivS, streams.FDivS, streams.MaxILP)
	if dd < 0.5 {
		t.Errorf("fdiv×fdiv slowdown = %.0f%%, want ≥50%% (paper: 120-140%%)", dd*100)
	}
	ddMin := get(streams.FDivS, streams.FDivS, streams.MinILP)
	if diff := dd - ddMin; diff > 0.7 || diff < -0.7 {
		t.Errorf("fdiv×fdiv slowdown varies with ILP (%.2f vs %.2f); paper has it insensitive", dd, ddMin)
	}
	// At min ILP, fadd co-exists with fmul essentially for free.
	if s := get(streams.FAddS, streams.FMulS, streams.MinILP); s > 0.25 {
		t.Errorf("min-ILP fadd×fmul slowdown %.0f%%, want ≈0", s*100)
	}
	// At max ILP, fadd suffers heavily from fmul (shared FP port).
	if s := get(streams.FAddS, streams.FMulS, streams.MaxILP); s < 0.4 {
		t.Errorf("max-ILP fadd×fmul slowdown %.0f%%, want large (paper: 180%%)", s*100)
	}
}

func TestFig2IntPanelShapes(t *testing.T) {
	cells, err := Fig2(context.Background(), DefaultOptions(), StreamMachineConfig(),
		[]streams.Kind{streams.IAddS, streams.IMulS},
		[]streams.Kind{streams.IAddS, streams.IMulS})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Subject == streams.IAddS && c.Partner == streams.IAddS && c.ILP == streams.MaxILP {
			if c.Slowdown < 0.7 {
				t.Errorf("iadd×iadd slowdown %.0f%%, want ≈100%%", c.Slowdown*100)
			}
		}
		if c.Subject == streams.IMulS && c.Partner == streams.IAddS && c.ILP == streams.MaxILP {
			// imul is almost unaffected by co-existing threads.
			if c.Slowdown > 0.35 {
				t.Errorf("imul slowed %.0f%% by iadd, want small", c.Slowdown*100)
			}
		}
	}
}

func TestRunKernelAndFormat(t *testing.T) {
	k, err := mm.New(mm.DefaultConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	var ms []KernelMetrics
	for _, mode := range []kernels.Mode{kernels.Serial, kernels.TLPCoarse} {
		m, err := RunKernel(k, mode, KernelMachineConfig(), "N=32")
		if err != nil {
			t.Fatal(err)
		}
		if m.Cycles == 0 || m.UopsRetired == 0 {
			t.Fatalf("%v: empty metrics %+v", mode, m)
		}
		ms = append(ms, m)
	}
	if _, ok := SerialOf(ms, "N=32"); !ok {
		t.Fatal("SerialOf missed the baseline")
	}
	out := FormatKernelFigure("Figure 3 — MM", ms)
	for _, want := range []string{"serial", "tlp-coarse", "N=32", "vs-ser"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted figure missing %q:\n%s", want, out)
		}
	}
}

func TestL2MissesReportedConvention(t *testing.T) {
	m := KernelMetrics{Mode: kernels.TLPPfetch, L2ReadMissesWorker: 10, L2ReadMissesBoth: 100}
	if m.L2MissesReported() != 10 {
		t.Error("pfetch must report worker misses only")
	}
	m.Mode = kernels.TLPCoarse
	if m.L2MissesReported() != 100 {
		t.Error("tlp must report the sum of both threads")
	}
}

func TestFormatFig1AndFig2(t *testing.T) {
	rows := []Fig1Row{
		{Stream: streams.FAddS, ILP: streams.MinILP, Threads: 1, CPI: 5},
		{Stream: streams.FAddS, ILP: streams.MinILP, Threads: 2, CPI: 5.1},
	}
	out := FormatFig1(rows)
	if !strings.Contains(out, "fadd") || !strings.Contains(out, "5.00") {
		t.Errorf("fig1 format wrong:\n%s", out)
	}
	cells := []Fig2Cell{{Subject: streams.FAddS, Partner: streams.FMulS, ILP: streams.MaxILP, SoloCPI: 1, CoCPI: 2, Slowdown: 1}}
	out2 := FormatFig2("Figure 2(a)", cells)
	if !strings.Contains(out2, "100%") {
		t.Errorf("fig2 format wrong:\n%s", out2)
	}
}

func TestSelectiveHaltLU(t *testing.T) {
	r, err := SelectiveHaltLU(context.Background(), DefaultOptions(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WaitProfile) == 0 {
		t.Fatal("profiling pass recorded no per-cell waits")
	}
	if r.Planned.HaltTransitions == 0 && len(r.HaltCells) > 0 {
		t.Error("plan selected halt cells but the rerun never halted")
	}
	// Selective halting must not significantly regress the spin baseline
	// (the paper adopts it because the halted waits come out ahead).
	if float64(r.Planned.Cycles) > 1.15*float64(r.Baseline.Cycles) {
		t.Errorf("selective halt %d cycles vs baseline %d: regression", r.Planned.Cycles, r.Baseline.Cycles)
	}
	out := FormatSelectiveHalt(r)
	if !strings.Contains(out, "selective halt") {
		t.Errorf("format wrong:\n%s", out)
	}
}

func TestSensitivitySweep(t *testing.T) {
	variants := []Variant{
		DefaultVariants()[0], // baseline
		{"alloc-width", "2", func(c *smt.Config) { c.AllocWidth = 2; c.RetireWidth = 2 }},
	}
	points, err := Sensitivity(context.Background(), DefaultOptions(), func() (Builder, error) {
		return mm.New(mm.DefaultConfig(32))
	}, kernels.TLPCoarse, variants)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// Narrowing the front end must slow a front-end-bound kernel.
	if points[1].Metrics.Cycles <= points[0].Metrics.Cycles {
		t.Errorf("alloc-width 2 (%d cycles) not slower than baseline (%d)",
			points[1].Metrics.Cycles, points[0].Metrics.Cycles)
	}
	out := FormatSensitivity("t", points)
	if !strings.Contains(out, "alloc-width") || !strings.Contains(out, "vs-base") {
		t.Errorf("format wrong:\n%s", out)
	}
}

func TestSensitivityRejectsInvalidVariant(t *testing.T) {
	_, err := Sensitivity(context.Background(), DefaultOptions(), func() (Builder, error) {
		return mm.New(mm.DefaultConfig(32))
	}, kernels.Serial, []Variant{{"bad", "rob=0", func(c *smt.Config) { c.ROB = 0 }}})
	if err == nil {
		t.Fatal("invalid variant accepted")
	}
}

func TestFigureSweepsSmall(t *testing.T) {
	ms, err := Fig3MM(context.Background(), DefaultOptions(), []int{32})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 { // six MM modes including serial+pf
		t.Fatalf("fig3 rows = %d, want 6", len(ms))
	}
	lu, err := Fig4LU(context.Background(), DefaultOptions(), []int{32})
	if err != nil {
		t.Fatal(err)
	}
	if len(lu) != 3 {
		t.Fatalf("fig4 rows = %d, want 3", len(lu))
	}
	out := FormatKernelFigure("t", append(ms, lu...))
	if !strings.Contains(out, "serial+pf") || !strings.Contains(out, "tlp-pfetch") {
		t.Errorf("figure format incomplete:\n%s", out)
	}
}
