package experiments

import (
	"fmt"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/bt"
	"smtexplore/internal/kernels/cg"
	"smtexplore/internal/kernels/lu"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/runner"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

// StreamCell measures one stream cell — one or two co-executed streams
// over a cycle window — through the options' cache and observe sink.
// This is the exact primitive the Figure 1/2 harnesses use, under the
// same content key, so an external caller (the smtd service) shares
// results with the figure sweeps in both directions.
func (o Options) StreamCell(mcfg smt.Config, specs []streams.Spec, window uint64) ([]float64, error) {
	return o.measureCPI(mcfg, specs, window)
}

// NamedKernelCell runs the canonical (kernel, size, mode) cell on the
// scaled kernel machine through the options' cache, under the same
// content key the Figure 3/4/5 harnesses use — a service request for
// "mm N=64 tlp-pfetch" reuses a Figure 3 result and vice versa. size
// selects the matrix dimension for mm/lu (required > 0) and overrides
// the instance defaults for cg (N) and bt (G) when non-zero.
func NamedKernelCell(o Options, kernel string, size int, mode kernels.Mode) (KernelMetrics, error) {
	mcfg := KernelMachineConfig()
	var (
		cfg   any
		build func() (Builder, error)
		label string
	)
	switch kernel {
	case "mm":
		if size <= 0 {
			return KernelMetrics{}, fmt.Errorf("experiments: mm needs a size > 0")
		}
		c := mm.DefaultConfig(size)
		cfg, label = c, fmt.Sprintf("N=%d", size)
		build = func() (Builder, error) { return mm.New(c) }
	case "lu":
		if size <= 0 {
			return KernelMetrics{}, fmt.Errorf("experiments: lu needs a size > 0")
		}
		c := lu.DefaultConfig(size)
		cfg, label = c, fmt.Sprintf("N=%d", size)
		build = func() (Builder, error) { return lu.New(c) }
	case "cg":
		c := cg.DefaultConfig()
		if size > 0 {
			c.N = size
		}
		cfg, label = c, fmt.Sprintf("n=%d nnz/row=%d iters=%d", c.N, c.NNZPerRow, c.Iters)
		build = func() (Builder, error) { return cg.New(c) }
	case "bt":
		c := bt.DefaultConfig()
		if size > 0 {
			c.G = size
		}
		cfg, label = c, fmt.Sprintf("G=%d steps=%d", c.G, c.Steps)
		build = func() (Builder, error) { return bt.New(c) }
	default:
		return KernelMetrics{}, fmt.Errorf("experiments: unknown kernel %q", kernel)
	}
	key := runner.Key("kernel", mcfg, kernel, cfg, mode, label)
	return o.runKernel(key, build, mode, mcfg, label)
}
