package experiments

import (
	"fmt"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/bt"
	"smtexplore/internal/kernels/cg"
	"smtexplore/internal/kernels/lu"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/runner"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

// StreamCell measures one stream cell — one or two co-executed streams
// over a cycle window — through the options' cache and observe sink.
// This is the exact primitive the Figure 1/2 harnesses use, under the
// same content key, so an external caller (the smtd service) shares
// results with the figure sweeps in both directions.
func (o Options) StreamCell(mcfg smt.Config, specs []streams.Spec, window uint64) ([]float64, error) {
	return o.measureCPI(mcfg, specs, window)
}

// StreamCellKey is the content key a stream-measurement cell is cached
// and stored under — exactly the key the Figure 1/2 harnesses use, so an
// external planner (the study engine) can probe a store for warm results
// without simulating.
func StreamCellKey(mcfg smt.Config, specs []streams.Spec, window uint64) string {
	return runner.Key("measure-cpi", mcfg, specs, window)
}

// namedKernelPlan resolves the canonical (kernel, size) instance into
// its config (the key ingredient), display label and builder.
func namedKernelPlan(kernel string, size int) (cfg any, label string, build func() (Builder, error), err error) {
	switch kernel {
	case "mm":
		if size <= 0 {
			return nil, "", nil, fmt.Errorf("experiments: mm needs a size > 0")
		}
		c := mm.DefaultConfig(size)
		return c, fmt.Sprintf("N=%d", size), func() (Builder, error) { return mm.New(c) }, nil
	case "lu":
		if size <= 0 {
			return nil, "", nil, fmt.Errorf("experiments: lu needs a size > 0")
		}
		c := lu.DefaultConfig(size)
		return c, fmt.Sprintf("N=%d", size), func() (Builder, error) { return lu.New(c) }, nil
	case "cg":
		c := cg.DefaultConfig()
		if size > 0 {
			c.N = size
		}
		label := fmt.Sprintf("n=%d nnz/row=%d iters=%d", c.N, c.NNZPerRow, c.Iters)
		return c, label, func() (Builder, error) { return cg.New(c) }, nil
	case "bt":
		c := bt.DefaultConfig()
		if size > 0 {
			c.G = size
		}
		label := fmt.Sprintf("G=%d steps=%d", c.G, c.Steps)
		return c, label, func() (Builder, error) { return bt.New(c) }, nil
	}
	return nil, "", nil, fmt.Errorf("experiments: unknown kernel %q", kernel)
}

// KernelCellKey is the content key of the canonical (kernel, size, mode)
// cell — the same key NamedKernelCell and the Figure 3/4/5 sweeps cache
// under, exported for store probing alongside StreamCellKey.
func KernelCellKey(kernel string, size int, mode kernels.Mode) (string, error) {
	cfg, label, _, err := namedKernelPlan(kernel, size)
	if err != nil {
		return "", err
	}
	return runner.Key("kernel", KernelMachineConfig(), kernel, cfg, mode, label), nil
}

// KernelModes lists the execution modes the canonical (kernel, size)
// instance implements, in its presentation order — the order the
// Figure 3/4/5 sweeps enumerate, so a planner that defaults to "all
// modes" reproduces the figures' row order exactly.
func KernelModes(kernel string, size int) ([]kernels.Mode, error) {
	_, _, build, err := namedKernelPlan(kernel, size)
	if err != nil {
		return nil, err
	}
	b, err := build()
	if err != nil {
		return nil, err
	}
	return b.Modes(), nil
}

// NamedKernelCell runs the canonical (kernel, size, mode) cell on the
// scaled kernel machine through the options' cache, under the same
// content key the Figure 3/4/5 harnesses use — a service request for
// "mm N=64 tlp-pfetch" reuses a Figure 3 result and vice versa. size
// selects the matrix dimension for mm/lu (required > 0) and overrides
// the instance defaults for cg (N) and bt (G) when non-zero.
func NamedKernelCell(o Options, kernel string, size int, mode kernels.Mode) (KernelMetrics, error) {
	mcfg := KernelMachineConfig()
	cfg, label, build, err := namedKernelPlan(kernel, size)
	if err != nil {
		return KernelMetrics{}, err
	}
	key := runner.Key("kernel", mcfg, kernel, cfg, mode, label)
	return o.runKernel(key, build, mode, mcfg, label)
}
