package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"

	"smtexplore/internal/checkpoint"
	"smtexplore/internal/faultinject"
	"smtexplore/internal/kernels"
	"smtexplore/internal/smt"
)

// ErrCellPreempted marks a kernel cell that stopped cooperatively at a
// checkpoint instead of completing: the scheduler asked for its worker
// back (priority preemption, drain, watchdog). The cell's state is in
// the checkpoint sink; re-running the same cell resumes from it.
var ErrCellPreempted = errors.New("cell preempted at a checkpoint")

// CheckpointStats aggregates checkpoint activity across every cell
// sharing one Checkpointing configuration (the daemon's /metrics and
// the obs registry read it).
type CheckpointStats struct {
	written      atomic.Uint64
	restored     atomic.Uint64
	bytesWritten atomic.Uint64
	cyclesSaved  atomic.Uint64
}

// Snapshot reads the counters: checkpoints written and restored, total
// encoded bytes written, and simulated cycles that restores skipped
// re-running.
func (s *CheckpointStats) Snapshot() (written, restored, bytesWritten, cyclesSaved uint64) {
	return s.written.Load(), s.restored.Load(), s.bytesWritten.Load(), s.cyclesSaved.Load()
}

// Checkpointing makes kernel cells pausable and resumable. A cell under
// checkpointing writes its machine state to Sink every Every cycles and,
// when ShouldStop asks, abandons the run with ErrCellPreempted right
// after a final checkpoint — never mid-cycle, never losing state.
type Checkpointing struct {
	// Every is the pause-point interval in simulated cycles.
	Every uint64
	// Sink stores encoded checkpoints, keyed by checkpoint.SinkKey of
	// the cell's cache key.
	Sink checkpoint.Sink
	// ShouldStop is polled at every pause point; returning stop=true
	// preempts the cell, with reason quoted in the error. Nil never
	// stops.
	ShouldStop func() (reason string, stop bool)
	// OnRestore is called when a cell resumes from a checkpoint instead
	// of starting at cycle zero, with the simulated cycles skipped. Nil
	// is fine.
	OnRestore func(cyclesSaved uint64)
	// Stats, when non-nil, accumulates cross-cell counters.
	Stats *CheckpointStats
}

// enabled reports whether c actually checkpoints.
func (c *Checkpointing) enabled() bool {
	return c != nil && c.Sink != nil && c.Every > 0
}

// forCell derives a per-cell control block sharing c's sink, interval
// and stats but with the cell's own stop predicate and resume
// notification. The service uses it to give every cell its own
// preemption wiring without duplicating configuration.
func (c *Checkpointing) ForCell(shouldStop func() (string, bool), onRestore func(uint64)) *Checkpointing {
	if c == nil {
		return nil
	}
	return &Checkpointing{
		Every:      c.Every,
		Sink:       c.Sink,
		ShouldStop: shouldStop,
		OnRestore:  onRestore,
		Stats:      c.Stats,
	}
}

// runKernelCheckpointed is the checkpoint-aware variant of RunKernel:
// it resumes from a stored checkpoint when one exists (a corrupt or
// mismatched one is discarded and the run starts clean — resilience
// over reuse), writes a checkpoint every pause interval, and deletes
// the checkpoint once the cell completes so the sink never serves a
// stale machine for a finished cell.
func runKernelCheckpointed(b Builder, mode kernels.Mode, mcfg smt.Config, label, key string, ck *Checkpointing) (KernelMetrics, error) {
	newMachine := func() (*smt.Machine, error) {
		progs, err := b.Programs(mode)
		if err != nil {
			return nil, err
		}
		m := smt.New(mcfg)
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		return m, nil
	}
	m, err := newMachine()
	if err != nil {
		return KernelMetrics{}, err
	}
	// Close releases abandoned stream generators on the error and
	// preemption paths; a completed run has already closed its own.
	defer func() { m.Close() }()

	skey := checkpoint.SinkKey(key)
	if data, ok := ck.Sink.Load(skey); ok {
		restoreErr := faultinject.Hit(faultinject.PointCheckpointRestore)
		var cc *checkpoint.CellCheckpoint
		if restoreErr == nil {
			cc, restoreErr = checkpoint.Decode(data)
		}
		if restoreErr == nil && cc.Key != key {
			restoreErr = fmt.Errorf("checkpoint belongs to cell %q", cc.Key)
		}
		if restoreErr == nil {
			restoreErr = m.Restore(cc.Machine)
		}
		if restoreErr == nil {
			if ck.Stats != nil {
				ck.Stats.restored.Add(1)
				ck.Stats.cyclesSaved.Add(m.Cycle())
			}
			if ck.OnRestore != nil {
				ck.OnRestore(m.Cycle())
			}
		} else {
			// The checkpoint is unusable (bit rot, version skew, injected
			// fault, partial restore). Drop it and start from cycle zero
			// on a clean machine — Restore may have half-written state.
			ck.Sink.Delete(skey)
			m.Close()
			if m, err = newMachine(); err != nil {
				return KernelMetrics{}, err
			}
		}
	}

	var preemptReason string
	pause := func() bool {
		if err := faultinject.Hit(faultinject.PointCheckpointWrite); err == nil {
			cc := &checkpoint.CellCheckpoint{
				Key:     key,
				Kernel:  b.Name(),
				Mode:    fmt.Sprintf("%v", mode),
				Label:   label,
				Cycle:   m.Cycle(),
				Machine: m.Snapshot(),
			}
			if data, err := checkpoint.Encode(cc); err == nil {
				ck.Sink.Store(skey, data)
				if ck.Stats != nil {
					ck.Stats.written.Add(1)
					ck.Stats.bytesWritten.Add(uint64(len(data)))
				}
			}
		}
		if ck.ShouldStop != nil {
			if reason, stop := ck.ShouldStop(); stop {
				preemptReason = reason
				return true
			}
		}
		return false
	}

	// A resumed run keeps the absolute cycle ceiling of an uninterrupted
	// one: the budget shrinks by the cycles already simulated.
	if m.Cycle() >= maxKernelCycles {
		return KernelMetrics{}, fmt.Errorf("experiments: %s/%v did not complete within %d cycles", b.Name(), mode, uint64(maxKernelCycles))
	}
	res, err := m.RunPausable(maxKernelCycles-m.Cycle(), ck.Every, pause)
	if err != nil {
		return KernelMetrics{}, fmt.Errorf("experiments: %s/%v: %w", b.Name(), mode, err)
	}
	if res.Paused {
		if preemptReason == "" {
			preemptReason = "stop requested"
		}
		return KernelMetrics{}, fmt.Errorf("experiments: %s/%v %w (%s) at cycle %d", b.Name(), mode, ErrCellPreempted, preemptReason, m.Cycle())
	}
	if !res.Completed {
		return KernelMetrics{}, fmt.Errorf("experiments: %s/%v did not complete within %d cycles", b.Name(), mode, uint64(maxKernelCycles))
	}
	ck.Sink.Delete(skey)
	return collectKernelMetrics(b, mode, label, m), nil
}
