package experiments

import (
	"fmt"
	"strings"

	"smtexplore/internal/obs"
	"smtexplore/internal/streams"
)

// Observe requests per-cell observability artifacts from a harness: each
// matching cell writes a Chrome pipeline trace, an occupancy CSV and a
// metrics JSON (named after the cell label) into Dir. Observed cells
// bypass the result cache — a cache hit skips the simulation, and a
// skipped simulation has nothing to trace.
type Observe struct {
	// Dir receives the artifacts (created if missing).
	Dir string
	// Match selects which cell labels to observe; nil observes every
	// cell. Observing everything across a large harness is expensive in
	// both time (cache bypass) and disk — prefer a predicate.
	Match func(label string) bool
	// TraceMax bounds retained trace spans per cell (≤0 → default).
	TraceMax int
	// SampleEvery is the occupancy sampling period (≤0 → default).
	SampleEvery uint64
}

// MatchSubstring is a convenience Match predicate: observe cells whose
// label contains sub.
func MatchSubstring(sub string) func(string) bool {
	return func(label string) bool { return strings.Contains(label, sub) }
}

// wants reports whether label should be observed (false for a nil sink).
func (ob *Observe) wants(label string) bool {
	if ob == nil || ob.Dir == "" {
		return false
	}
	return ob.Match == nil || ob.Match(label)
}

// instruments builds the per-cell instrument bundle.
func (ob *Observe) instruments() *obs.Instruments {
	return obs.NewInstruments(ob.TraceMax, ob.SampleEvery)
}

// export writes the artifacts of one observed cell, annotating the
// metrics document with harness-level cache statistics when a cache is
// in play.
func (o Options) export(ins *obs.Instruments, label string, completed bool) error {
	meta := map[string]any{}
	if o.Cache != nil {
		st := o.Cache.Stats()
		meta["cache_hits"] = st.Hits
		meta["cache_misses"] = st.Misses
		meta["cache_entries"] = st.Entries
	}
	if o.Checkpoint != nil && o.Checkpoint.Stats != nil {
		written, restored, bytes, saved := o.Checkpoint.Stats.Snapshot()
		meta["checkpoints_written"] = written
		meta["checkpoints_restored"] = restored
		meta["checkpoint_bytes"] = bytes
		meta["resume_cycles_saved"] = saved
	}
	if err := ins.Export(o.Observe.Dir, label, completed, meta); err != nil {
		return fmt.Errorf("experiments: observe %s: %w", label, err)
	}
	return nil
}

// StreamCellLabel names a stream-measurement cell for observation
// matching and artifact naming: "fadd-maxILP+iload-medILP@120000".
func StreamCellLabel(specs []streams.Spec, window uint64) string {
	parts := make([]string, len(specs))
	for i, sp := range specs {
		parts[i] = fmt.Sprintf("%v-%v", sp.Kind, sp.ILP)
	}
	return fmt.Sprintf("%s@%d", strings.Join(parts, "+"), window)
}
