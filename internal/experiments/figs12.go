package experiments

import (
	"context"
	"fmt"

	"smtexplore/internal/obs"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/runner"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

// StreamWindowCycles is the measurement window for one stream run — the
// simulated analogue of the paper's ~10-second interval; CPI converges
// well within it.
const StreamWindowCycles = 120_000

// Fig1Row is one bar of Figure 1: the average CPI of a stream under one
// TLP×ILP execution mode.
type Fig1Row struct {
	Stream  streams.Kind
	ILP     streams.ILP
	Threads int // 1 or 2 (same stream on both contexts)
	CPI     float64
}

// Fig1Kinds are the streams shown in the paper's Figure 1.
func Fig1Kinds() []streams.Kind {
	return []streams.Kind{
		streams.FAddS, streams.FMulS, streams.FAddMulS,
		streams.IAddS, streams.ILoadS,
	}
}

// MeasureCPI runs one or two copies of the given stream specs and returns
// the per-context CPI over the measurement window (cycles/instructions of
// that context, as the paper computes it).
func MeasureCPI(mcfg smt.Config, specs []streams.Spec, window uint64) ([]float64, error) {
	return measureCPIWith(mcfg, specs, window, nil)
}

// measureCPIWith is MeasureCPI with an optional instrument bundle
// attached to the machine for the duration of the run.
func measureCPIWith(mcfg smt.Config, specs []streams.Spec, window uint64, ins *obs.Instruments) ([]float64, error) {
	if len(specs) == 0 || len(specs) > smt.NumContexts {
		return nil, fmt.Errorf("experiments: %d streams (want 1 or 2)", len(specs))
	}
	m := smt.New(mcfg)
	// Streams typically outlive the measurement window; Close releases
	// their abandoned generators.
	defer m.Close()
	if ins != nil {
		ins.Attach(m)
	}
	for i, sp := range specs {
		sp.Base = streams.DisjointBase(i)
		m.LoadStream(i, streams.Open(sp))
	}
	if _, err := m.Run(window); err != nil {
		return nil, err
	}
	c := m.Counters()
	out := make([]float64, len(specs))
	for i := range specs {
		instr := c.Get(perfmon.InstrRetired, i)
		if instr == 0 {
			return nil, fmt.Errorf("experiments: context %d retired nothing", i)
		}
		out[i] = float64(c.Get(perfmon.Cycles, i)) / float64(instr)
	}
	return out, nil
}

// Fig1 measures the Figure 1 matrix: for each stream and ILP degree, the
// single-threaded CPI and the per-thread CPI when two copies co-execute.
// Cells fan out over opt.Workers simulations; rows come back in the
// paper's presentation order regardless of completion order.
func Fig1(ctx context.Context, opt Options, mcfg smt.Config, kinds []streams.Kind) ([]Fig1Row, error) {
	type cell struct {
		kind    streams.Kind
		ilp     streams.ILP
		threads int
	}
	var cells []cell
	for _, k := range kinds {
		for _, ilp := range streams.Levels() {
			cells = append(cells, cell{k, ilp, 1}, cell{k, ilp, 2})
		}
	}
	return runner.Map(ctx, opt.Workers, cells, func(_ context.Context, c cell) (Fig1Row, error) {
		specs := make([]streams.Spec, c.threads)
		for i := range specs {
			specs[i] = streams.Spec{Kind: c.kind, ILP: c.ilp}
		}
		cpi, err := opt.measureCPI(mcfg, specs, StreamWindowCycles)
		if err != nil {
			word := "solo"
			if c.threads == 2 {
				word = "duo"
			}
			return Fig1Row{}, fmt.Errorf("fig1 %v/%v %s: %w", c.kind, c.ilp, word, err)
		}
		avg := cpi[0]
		if c.threads == 2 {
			avg = (cpi[0] + cpi[1]) / 2
		}
		return Fig1Row{Stream: c.kind, ILP: c.ilp, Threads: c.threads, CPI: avg}, nil
	})
}

// Fig2Cell is one point of Figure 2: the slowdown factor of Subject when
// co-executed with Partner at the given (shared) ILP level, relative to
// Subject running alone.
type Fig2Cell struct {
	Subject  streams.Kind
	Partner  streams.Kind
	ILP      streams.ILP
	SoloCPI  float64
	CoCPI    float64
	Slowdown float64 // CoCPI/SoloCPI - 1, the paper's "slowdown factor"
}

// Fig2 measures the pairwise co-execution matrix over the given subject
// and partner stream sets (Figure 2a: FP×FP; 2b: int×int; 2c: int×fp
// arithmetic). Solo baselines fan out first (one per kind×ILP — they
// are also the divisors of every matrix cell), then the pairwise duos.
// Duo cells are keyed on the *ordered* pair: the simulated core is not
// exactly symmetric in its hardware-context index, so (a,b) and (b,a)
// are distinct simulations, exactly as in the serial sweep.
func Fig2(ctx context.Context, opt Options, mcfg smt.Config, subjects, partners []streams.Kind) ([]Fig2Cell, error) {
	type soloCell struct {
		kind streams.Kind
		ilp  streams.ILP
	}
	var soloCells []soloCell
	for _, ilp := range streams.Levels() {
		for _, k := range allKindsUnion(subjects, partners) {
			soloCells = append(soloCells, soloCell{k, ilp})
		}
	}
	soloCPI, err := runner.Map(ctx, opt.Workers, soloCells, func(_ context.Context, c soloCell) (float64, error) {
		cpi, err := opt.measureCPI(mcfg, []streams.Spec{{Kind: c.kind, ILP: c.ilp}}, StreamWindowCycles)
		if err != nil {
			return 0, fmt.Errorf("fig2 solo %v/%v: %w", c.kind, c.ilp, err)
		}
		return cpi[0], nil
	})
	if err != nil {
		return nil, err
	}
	solo := map[[2]int]float64{}
	for i, c := range soloCells {
		solo[[2]int{int(c.kind), int(c.ilp)}] = soloCPI[i]
	}

	type duoCell struct {
		subj, part streams.Kind
		ilp        streams.ILP
	}
	var duoCells []duoCell
	for _, ilp := range streams.Levels() {
		for _, subj := range subjects {
			for _, part := range partners {
				duoCells = append(duoCells, duoCell{subj, part, ilp})
			}
		}
	}
	return runner.Map(ctx, opt.Workers, duoCells, func(_ context.Context, c duoCell) (Fig2Cell, error) {
		duo, err := opt.measureCPI(mcfg, []streams.Spec{
			{Kind: c.subj, ILP: c.ilp}, {Kind: c.part, ILP: c.ilp},
		}, StreamWindowCycles)
		if err != nil {
			return Fig2Cell{}, fmt.Errorf("fig2 %v+%v/%v: %w", c.subj, c.part, c.ilp, err)
		}
		s := solo[[2]int{int(c.subj), int(c.ilp)}]
		return Fig2Cell{
			Subject:  c.subj,
			Partner:  c.part,
			ILP:      c.ilp,
			SoloCPI:  s,
			CoCPI:    duo[0],
			Slowdown: duo[0]/s - 1,
		}, nil
	})
}

func allKindsUnion(a, b []streams.Kind) []streams.Kind {
	seen := map[streams.Kind]bool{}
	var out []streams.Kind
	for _, k := range append(append([]streams.Kind{}, a...), b...) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Fig2a/Fig2b/Fig2c run the three panels of Figure 2.
func Fig2a(ctx context.Context, opt Options, mcfg smt.Config) ([]Fig2Cell, error) {
	return Fig2(ctx, opt, mcfg, streams.FPKinds(), streams.FPKinds())
}
func Fig2b(ctx context.Context, opt Options, mcfg smt.Config) ([]Fig2Cell, error) {
	return Fig2(ctx, opt, mcfg, streams.IntKinds(), streams.IntKinds())
}
func Fig2c(ctx context.Context, opt Options, mcfg smt.Config) ([]Fig2Cell, error) {
	return Fig2(ctx, opt, mcfg, streams.FPArith(), streams.IntArith())
}
