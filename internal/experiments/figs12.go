package experiments

import (
	"fmt"

	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

// StreamWindowCycles is the measurement window for one stream run — the
// simulated analogue of the paper's ~10-second interval; CPI converges
// well within it.
const StreamWindowCycles = 120_000

// Fig1Row is one bar of Figure 1: the average CPI of a stream under one
// TLP×ILP execution mode.
type Fig1Row struct {
	Stream  streams.Kind
	ILP     streams.ILP
	Threads int // 1 or 2 (same stream on both contexts)
	CPI     float64
}

// Fig1Kinds are the streams shown in the paper's Figure 1.
func Fig1Kinds() []streams.Kind {
	return []streams.Kind{
		streams.FAddS, streams.FMulS, streams.FAddMulS,
		streams.IAddS, streams.ILoadS,
	}
}

// MeasureCPI runs one or two copies of the given stream specs and returns
// the per-context CPI over the measurement window (cycles/instructions of
// that context, as the paper computes it).
func MeasureCPI(mcfg smt.Config, specs []streams.Spec, window uint64) ([]float64, error) {
	if len(specs) == 0 || len(specs) > smt.NumContexts {
		return nil, fmt.Errorf("experiments: %d streams (want 1 or 2)", len(specs))
	}
	m := smt.New(mcfg)
	for i, sp := range specs {
		sp.Base = streams.DisjointBase(i)
		m.LoadProgram(i, streams.Build(sp))
	}
	if _, err := m.Run(window); err != nil {
		return nil, err
	}
	c := m.Counters()
	out := make([]float64, len(specs))
	for i := range specs {
		instr := c.Get(perfmon.InstrRetired, i)
		if instr == 0 {
			return nil, fmt.Errorf("experiments: context %d retired nothing", i)
		}
		out[i] = float64(c.Get(perfmon.Cycles, i)) / float64(instr)
	}
	return out, nil
}

// Fig1 measures the Figure 1 matrix: for each stream and ILP degree, the
// single-threaded CPI and the per-thread CPI when two copies co-execute.
func Fig1(mcfg smt.Config, kinds []streams.Kind) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, k := range kinds {
		for _, ilp := range streams.Levels() {
			solo, err := MeasureCPI(mcfg, []streams.Spec{{Kind: k, ILP: ilp}}, StreamWindowCycles)
			if err != nil {
				return nil, fmt.Errorf("fig1 %v/%v solo: %w", k, ilp, err)
			}
			rows = append(rows, Fig1Row{Stream: k, ILP: ilp, Threads: 1, CPI: solo[0]})
			duo, err := MeasureCPI(mcfg, []streams.Spec{
				{Kind: k, ILP: ilp}, {Kind: k, ILP: ilp},
			}, StreamWindowCycles)
			if err != nil {
				return nil, fmt.Errorf("fig1 %v/%v duo: %w", k, ilp, err)
			}
			rows = append(rows, Fig1Row{Stream: k, ILP: ilp, Threads: 2, CPI: (duo[0] + duo[1]) / 2})
		}
	}
	return rows, nil
}

// Fig2Cell is one point of Figure 2: the slowdown factor of Subject when
// co-executed with Partner at the given (shared) ILP level, relative to
// Subject running alone.
type Fig2Cell struct {
	Subject  streams.Kind
	Partner  streams.Kind
	ILP      streams.ILP
	SoloCPI  float64
	CoCPI    float64
	Slowdown float64 // CoCPI/SoloCPI - 1, the paper's "slowdown factor"
}

// Fig2 measures the pairwise co-execution matrix over the given subject
// and partner stream sets (Figure 2a: FP×FP; 2b: int×int; 2c: int×fp
// arithmetic).
func Fig2(mcfg smt.Config, subjects, partners []streams.Kind) ([]Fig2Cell, error) {
	solo := map[[2]int]float64{}
	for _, ilp := range streams.Levels() {
		for _, k := range allKindsUnion(subjects, partners) {
			c, err := MeasureCPI(mcfg, []streams.Spec{{Kind: k, ILP: ilp}}, StreamWindowCycles)
			if err != nil {
				return nil, fmt.Errorf("fig2 solo %v/%v: %w", k, ilp, err)
			}
			solo[[2]int{int(k), int(ilp)}] = c[0]
		}
	}
	var cells []Fig2Cell
	for _, ilp := range streams.Levels() {
		for _, subj := range subjects {
			for _, part := range partners {
				duo, err := MeasureCPI(mcfg, []streams.Spec{
					{Kind: subj, ILP: ilp}, {Kind: part, ILP: ilp},
				}, StreamWindowCycles)
				if err != nil {
					return nil, fmt.Errorf("fig2 %v+%v/%v: %w", subj, part, ilp, err)
				}
				s := solo[[2]int{int(subj), int(ilp)}]
				cells = append(cells, Fig2Cell{
					Subject:  subj,
					Partner:  part,
					ILP:      ilp,
					SoloCPI:  s,
					CoCPI:    duo[0],
					Slowdown: duo[0]/s - 1,
				})
			}
		}
	}
	return cells, nil
}

func allKindsUnion(a, b []streams.Kind) []streams.Kind {
	seen := map[streams.Kind]bool{}
	var out []streams.Kind
	for _, k := range append(append([]streams.Kind{}, a...), b...) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Fig2a/Fig2b/Fig2c run the three panels of Figure 2.
func Fig2a(mcfg smt.Config) ([]Fig2Cell, error) {
	return Fig2(mcfg, streams.FPKinds(), streams.FPKinds())
}
func Fig2b(mcfg smt.Config) ([]Fig2Cell, error) {
	return Fig2(mcfg, streams.IntKinds(), streams.IntKinds())
}
func Fig2c(mcfg smt.Config) ([]Fig2Cell, error) {
	return Fig2(mcfg, streams.FPArith(), streams.IntArith())
}
