package experiments

import (
	"fmt"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/bt"
	"smtexplore/internal/kernels/cg"
	"smtexplore/internal/kernels/lu"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/profile"
	"smtexplore/internal/smt"
)

// Table1Column is one column of Table 1: the per-subunit utilisation of
// the instrumented thread under one execution mode, plus its total
// instruction count (the paper's "Total instr.").
type Table1Column struct {
	Kernel string
	// Mode is "serial", "tlp" (one of the two symmetric work threads) or
	// "spr" (the prefetcher thread).
	Mode string
	// Share maps each Table 1 row to its percentage.
	Share map[profile.Row]float64
	// ALU0Share is the fraction executing on ALU0 specifically — the
	// bottleneck §5.3 identifies for logical-op-heavy code.
	ALU0Share float64
	// TotalInstr is the thread's profiled instruction count.
	TotalInstr uint64
}

// table1Instance binds a kernel to the instance used for profiling
// (smaller than the Figure runs: mixes are size-invariant).
type table1Instance struct {
	name    string
	builder Builder
	// tlpMode is the work-partitioning mode profiled in the "tlp" column.
	tlpMode kernels.Mode
	// sprMode is the precomputation mode profiled in the "spr" column.
	sprMode kernels.Mode
}

func table1Instances() ([]table1Instance, error) {
	mmK, err := mm.New(mm.DefaultConfig(32))
	if err != nil {
		return nil, err
	}
	luK, err := lu.New(lu.DefaultConfig(32))
	if err != nil {
		return nil, err
	}
	cgCfg := cg.DefaultConfig()
	cgCfg.Iters = 2
	cgK, err := cg.New(cgCfg)
	if err != nil {
		return nil, err
	}
	btCfg := bt.DefaultConfig()
	btCfg.G = 6
	btCfg.Steps = 1
	btK, err := bt.New(btCfg)
	if err != nil {
		return nil, err
	}
	return []table1Instance{
		{"MM", mmK, kernels.TLPCoarse, kernels.TLPPfetch},
		{"LU", luK, kernels.TLPCoarse, kernels.TLPPfetch},
		{"CG", cgK, kernels.TLPCoarse, kernels.TLPPfetch},
		{"BT", btK, kernels.TLPCoarse, kernels.TLPPfetch},
	}, nil
}

// Table1 regenerates the paper's Table 1: for each kernel, the dynamic
// instruction-mix breakdown of the serial thread, of one TLP work thread,
// and of the SPR prefetcher thread, as collected by the Pin-analogue
// profiler on the retirement stream.
func Table1() ([]Table1Column, error) {
	insts, err := table1Instances()
	if err != nil {
		return nil, err
	}
	var out []Table1Column
	for _, inst := range insts {
		serial, err := profileThread(inst.builder, kernels.Serial, kernels.WorkerTid)
		if err != nil {
			return nil, fmt.Errorf("table1 %s serial: %w", inst.name, err)
		}
		serial.Kernel, serial.Mode = inst.name, "serial"
		tlp, err := profileThread(inst.builder, inst.tlpMode, kernels.WorkerTid)
		if err != nil {
			return nil, fmt.Errorf("table1 %s tlp: %w", inst.name, err)
		}
		tlp.Kernel, tlp.Mode = inst.name, "tlp"
		spr, err := profileThread(inst.builder, inst.sprMode, kernels.HelperTid)
		if err != nil {
			return nil, fmt.Errorf("table1 %s spr: %w", inst.name, err)
		}
		spr.Kernel, spr.Mode = inst.name, "spr"
		out = append(out, serial, tlp, spr)
	}
	return out, nil
}

// profileThread runs the kernel in the given mode and profiles the
// instrumented thread's retired instruction mix.
func profileThread(b Builder, mode kernels.Mode, tid int) (Table1Column, error) {
	progs, err := b.Programs(mode)
	if err != nil {
		return Table1Column{}, err
	}
	m := smt.New(KernelMachineConfig())
	col := profile.NewCollector()
	col.Attach(m)
	m.LoadProgram(kernels.WorkerTid, progs[0])
	if progs[1] != nil {
		m.LoadProgram(kernels.HelperTid, progs[1])
	}
	res, err := m.Run(maxKernelCycles)
	if err != nil {
		return Table1Column{}, err
	}
	if !res.Completed {
		return Table1Column{}, fmt.Errorf("profiling run did not complete")
	}
	out := Table1Column{
		Share:      make(map[profile.Row]float64, profile.NumRows),
		ALU0Share:  col.ALU0Share(tid),
		TotalInstr: col.Total(tid),
	}
	for _, row := range profile.Rows() {
		out.Share[row] = col.RowShare(tid, row)
	}
	return out, nil
}
