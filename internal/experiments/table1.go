package experiments

import (
	"context"
	"fmt"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/bt"
	"smtexplore/internal/kernels/cg"
	"smtexplore/internal/kernels/lu"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/profile"
	"smtexplore/internal/runner"
	"smtexplore/internal/smt"
)

// Table1Column is one column of Table 1: the per-subunit utilisation of
// the instrumented thread under one execution mode, plus its total
// instruction count (the paper's "Total instr.").
type Table1Column struct {
	Kernel string
	// Mode is "serial", "tlp" (one of the two symmetric work threads) or
	// "spr" (the prefetcher thread).
	Mode string
	// Share maps each Table 1 row to its percentage.
	Share map[profile.Row]float64
	// ALU0Share is the fraction executing on ALU0 specifically — the
	// bottleneck §5.3 identifies for logical-op-heavy code.
	ALU0Share float64
	// TotalInstr is the thread's profiled instruction count.
	TotalInstr uint64
}

// table1Instance binds a kernel to the instance used for profiling
// (smaller than the Figure runs: mixes are size-invariant). The builder
// is constructed per profiling cell — deterministically, from cfg — so
// the three columns of an instance can run concurrently.
type table1Instance struct {
	name  string
	cfg   any // the kernel's Config value, for the cache key
	build func() (Builder, error)
	// tlpMode is the work-partitioning mode profiled in the "tlp" column.
	tlpMode kernels.Mode
	// sprMode is the precomputation mode profiled in the "spr" column.
	sprMode kernels.Mode
}

func table1Instances() []table1Instance {
	cgCfg := cg.DefaultConfig()
	cgCfg.Iters = 2
	btCfg := bt.DefaultConfig()
	btCfg.G = 6
	btCfg.Steps = 1
	return []table1Instance{
		{"MM", mm.DefaultConfig(32), func() (Builder, error) { return mm.New(mm.DefaultConfig(32)) }, kernels.TLPCoarse, kernels.TLPPfetch},
		{"LU", lu.DefaultConfig(32), func() (Builder, error) { return lu.New(lu.DefaultConfig(32)) }, kernels.TLPCoarse, kernels.TLPPfetch},
		{"CG", cgCfg, func() (Builder, error) { return cg.New(cgCfg) }, kernels.TLPCoarse, kernels.TLPPfetch},
		{"BT", btCfg, func() (Builder, error) { return bt.New(btCfg) }, kernels.TLPCoarse, kernels.TLPPfetch},
	}
}

// Table1 regenerates the paper's Table 1: for each kernel, the dynamic
// instruction-mix breakdown of the serial thread, of one TLP work thread,
// and of the SPR prefetcher thread, as collected by the Pin-analogue
// profiler on the retirement stream. The twelve profiling cells fan out
// over opt.Workers.
func Table1(ctx context.Context, opt Options) ([]Table1Column, error) {
	type cell struct {
		inst   table1Instance
		mode   kernels.Mode
		column string // "serial", "tlp" or "spr"
		tid    int
	}
	var cells []cell
	for _, inst := range table1Instances() {
		cells = append(cells,
			cell{inst, kernels.Serial, "serial", kernels.WorkerTid},
			cell{inst, inst.tlpMode, "tlp", kernels.WorkerTid},
			cell{inst, inst.sprMode, "spr", kernels.HelperTid},
		)
	}
	mcfg := KernelMachineConfig()
	return runner.Map(ctx, opt.Workers, cells, func(_ context.Context, c cell) (Table1Column, error) {
		key := runner.Key("table1", mcfg, c.inst.name, c.inst.cfg, c.mode, c.tid)
		col, err := runner.CachedMetered(opt.Cache, key, opt.Meter, func() (Table1Column, error) {
			return profileThread(c.inst.build, c.mode, c.tid)
		})
		if err != nil {
			return Table1Column{}, fmt.Errorf("table1 %s %s: %w", c.inst.name, c.column, err)
		}
		col.Kernel, col.Mode = c.inst.name, c.column
		return col, nil
	})
}

// profileThread runs the kernel in the given mode and profiles the
// instrumented thread's retired instruction mix.
func profileThread(build func() (Builder, error), mode kernels.Mode, tid int) (Table1Column, error) {
	b, err := build()
	if err != nil {
		return Table1Column{}, err
	}
	progs, err := b.Programs(mode)
	if err != nil {
		return Table1Column{}, err
	}
	m := smt.New(KernelMachineConfig())
	col := profile.NewCollector()
	col.Attach(m)
	m.LoadProgram(kernels.WorkerTid, progs[0])
	if progs[1] != nil {
		m.LoadProgram(kernels.HelperTid, progs[1])
	}
	res, err := m.Run(maxKernelCycles)
	if err != nil {
		return Table1Column{}, err
	}
	if !res.Completed {
		return Table1Column{}, fmt.Errorf("profiling run did not complete")
	}
	out := Table1Column{
		Share:      make(map[profile.Row]float64, profile.NumRows),
		ALU0Share:  col.ALU0Share(tid),
		TotalInstr: col.Total(tid),
	}
	for _, row := range profile.Rows() {
		out.Share[row] = col.RowShare(tid, row)
	}
	return out, nil
}
