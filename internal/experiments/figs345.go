package experiments

import (
	"fmt"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/bt"
	"smtexplore/internal/kernels/cg"
	"smtexplore/internal/kernels/lu"
	"smtexplore/internal/kernels/mm"
)

// MMSizes are the scaled matrix dimensions standing in for the paper's
// 1024², 2048² and 4096² (§6 of DESIGN.md: each size class keeps its
// working-set:L2 regime — below, around, and far above capacity).
func MMSizes() []int { return []int{32, 64, 128} }

// LUSizes are the scaled LU dimensions.
func LUSizes() []int { return []int{32, 64, 128} }

// Fig3MM runs the Figure 3 sweep: five execution modes across the three
// matrix sizes, collecting the four panels (time, L2 misses, resource
// stalls, µops).
func Fig3MM(sizes []int) ([]KernelMetrics, error) {
	var out []KernelMetrics
	for _, n := range sizes {
		k, err := mm.New(mm.DefaultConfig(n))
		if err != nil {
			return nil, err
		}
		for _, mode := range k.Modes() {
			met, err := RunKernel(k, mode, KernelMachineConfig(), fmt.Sprintf("N=%d", n))
			if err != nil {
				return nil, err
			}
			out = append(out, met)
		}
	}
	return out, nil
}

// Fig4LU runs the Figure 4 sweep: serial, tlp-coarse and tlp-pfetch across
// the three matrix sizes.
func Fig4LU(sizes []int) ([]KernelMetrics, error) {
	var out []KernelMetrics
	for _, n := range sizes {
		k, err := lu.New(lu.DefaultConfig(n))
		if err != nil {
			return nil, err
		}
		for _, mode := range k.Modes() {
			met, err := RunKernel(k, mode, KernelMachineConfig(), fmt.Sprintf("N=%d", n))
			if err != nil {
				return nil, err
			}
			out = append(out, met)
		}
	}
	return out, nil
}

// Fig5CG runs the CG panels of Figure 5 (single Class-A-like instance).
func Fig5CG() ([]KernelMetrics, error) {
	cfg := cg.DefaultConfig()
	k, err := cg.New(cfg)
	if err != nil {
		return nil, err
	}
	var out []KernelMetrics
	for _, mode := range k.Modes() {
		met, err := RunKernel(k, mode, KernelMachineConfig(),
			fmt.Sprintf("n=%d nnz/row=%d iters=%d", cfg.N, cfg.NNZPerRow, cfg.Iters))
		if err != nil {
			return nil, err
		}
		out = append(out, met)
	}
	return out, nil
}

// Fig5BT runs the BT panels of Figure 5.
func Fig5BT() ([]KernelMetrics, error) {
	cfg := bt.DefaultConfig()
	k, err := bt.New(cfg)
	if err != nil {
		return nil, err
	}
	var out []KernelMetrics
	for _, mode := range k.Modes() {
		met, err := RunKernel(k, mode, KernelMachineConfig(),
			fmt.Sprintf("G=%d steps=%d", cfg.G, cfg.Steps))
		if err != nil {
			return nil, err
		}
		out = append(out, met)
	}
	return out, nil
}

// SerialOf extracts the serial baseline with the given label from a
// metrics list.
func SerialOf(ms []KernelMetrics, label string) (KernelMetrics, bool) {
	for _, m := range ms {
		if m.Mode == kernels.Serial && m.Label == label {
			return m, true
		}
	}
	return KernelMetrics{}, false
}
