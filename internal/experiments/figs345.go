package experiments

import (
	"context"
	"fmt"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/bt"
	"smtexplore/internal/kernels/cg"
	"smtexplore/internal/kernels/lu"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/runner"
)

// MMSizes are the scaled matrix dimensions standing in for the paper's
// 1024², 2048² and 4096² (§6 of DESIGN.md: each size class keeps its
// working-set:L2 regime — below, around, and far above capacity).
func MMSizes() []int { return []int{32, 64, 128} }

// LUSizes are the scaled LU dimensions.
func LUSizes() []int { return []int{32, 64, 128} }

// kernelCell is one (size, mode) point of a figure sweep. Each cell
// rebuilds its kernel inside the worker — construction is deterministic
// (fixed seeds, per-build cell allocators), so a rebuilt kernel emits
// exactly the programs the serial sweep's shared builder did, and
// concurrent cells share no mutable state.
type kernelCell struct {
	mode  kernels.Mode
	label string
	key   string
	build func() (Builder, error)
}

// runKernelCells fans a figure's cells out and returns the metrics in
// submission order.
func runKernelCells(ctx context.Context, opt Options, cells []kernelCell) ([]KernelMetrics, error) {
	mcfg := KernelMachineConfig()
	return runner.Map(ctx, opt.Workers, cells, func(_ context.Context, c kernelCell) (KernelMetrics, error) {
		return opt.runKernel(c.key, c.build, c.mode, mcfg, c.label)
	})
}

// sizedKernelCells enumerates the (size, mode) grid of a Figure 3/4
// sweep in the serial emission order.
func sizedKernelCells(name string, sizes []int, build func(n int) (Builder, error), cfgOf func(n int) any) ([]kernelCell, error) {
	mcfg := KernelMachineConfig()
	var cells []kernelCell
	for _, n := range sizes {
		probe, err := build(n)
		if err != nil {
			return nil, err
		}
		for _, mode := range probe.Modes() {
			cells = append(cells, kernelCell{
				mode:  mode,
				label: fmt.Sprintf("N=%d", n),
				key:   runner.Key("kernel", mcfg, name, cfgOf(n), mode, fmt.Sprintf("N=%d", n)),
				build: func() (Builder, error) { return build(n) },
			})
		}
	}
	return cells, nil
}

// Fig3MM runs the Figure 3 sweep: five execution modes across the three
// matrix sizes, collecting the four panels (time, L2 misses, resource
// stalls, µops).
func Fig3MM(ctx context.Context, opt Options, sizes []int) ([]KernelMetrics, error) {
	cells, err := sizedKernelCells("mm", sizes,
		func(n int) (Builder, error) { return mm.New(mm.DefaultConfig(n)) },
		func(n int) any { return mm.DefaultConfig(n) })
	if err != nil {
		return nil, err
	}
	return runKernelCells(ctx, opt, cells)
}

// Fig4LU runs the Figure 4 sweep: serial, tlp-coarse and tlp-pfetch across
// the three matrix sizes.
func Fig4LU(ctx context.Context, opt Options, sizes []int) ([]KernelMetrics, error) {
	cells, err := sizedKernelCells("lu", sizes,
		func(n int) (Builder, error) { return lu.New(lu.DefaultConfig(n)) },
		func(n int) any { return lu.DefaultConfig(n) })
	if err != nil {
		return nil, err
	}
	return runKernelCells(ctx, opt, cells)
}

// Fig5CG runs the CG panels of Figure 5 (single Class-A-like instance).
func Fig5CG(ctx context.Context, opt Options) ([]KernelMetrics, error) {
	cfg := cg.DefaultConfig()
	probe, err := cg.New(cfg)
	if err != nil {
		return nil, err
	}
	label := fmt.Sprintf("n=%d nnz/row=%d iters=%d", cfg.N, cfg.NNZPerRow, cfg.Iters)
	mcfg := KernelMachineConfig()
	var cells []kernelCell
	for _, mode := range probe.Modes() {
		cells = append(cells, kernelCell{
			mode:  mode,
			label: label,
			key:   runner.Key("kernel", mcfg, "cg", cfg, mode, label),
			build: func() (Builder, error) { return cg.New(cfg) },
		})
	}
	return runKernelCells(ctx, opt, cells)
}

// Fig5BT runs the BT panels of Figure 5.
func Fig5BT(ctx context.Context, opt Options) ([]KernelMetrics, error) {
	cfg := bt.DefaultConfig()
	probe, err := bt.New(cfg)
	if err != nil {
		return nil, err
	}
	label := fmt.Sprintf("G=%d steps=%d", cfg.G, cfg.Steps)
	mcfg := KernelMachineConfig()
	var cells []kernelCell
	for _, mode := range probe.Modes() {
		cells = append(cells, kernelCell{
			mode:  mode,
			label: label,
			key:   runner.Key("kernel", mcfg, "bt", cfg, mode, label),
			build: func() (Builder, error) { return bt.New(cfg) },
		})
	}
	return runKernelCells(ctx, opt, cells)
}

// SerialOf extracts the serial baseline with the given label from a
// metrics list.
func SerialOf(ms []KernelMetrics, label string) (KernelMetrics, bool) {
	for _, m := range ms {
		if m.Mode == kernels.Serial && m.Label == label {
			return m, true
		}
	}
	return KernelMetrics{}, false
}
