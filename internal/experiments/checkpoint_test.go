package experiments

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"smtexplore/internal/checkpoint"
	"smtexplore/internal/faultinject"
	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/runner"
)

const (
	ckKey   = "ck-test-mm-16"
	ckLabel = "mm/tlp-fine/16"
	ckEvery = 2000
)

func ckBuilder(t *testing.T) Builder {
	t.Helper()
	b, err := mm.New(mm.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ckControl is the uninterrupted reference run the parity assertions
// compare against.
func ckControl(t *testing.T) KernelMetrics {
	t.Helper()
	km, err := RunKernel(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel)
	if err != nil {
		t.Fatal(err)
	}
	return km
}

// TestCheckpointResumeParity is the tentpole guarantee at the harness
// level: preempt a kernel cell at a checkpoint, resume it in a separate
// call (fresh machine, as a restarted process would), and require the
// resulting metrics to be exactly those of an uninterrupted run.
func TestCheckpointResumeParity(t *testing.T) {
	control := ckControl(t)
	sink := checkpoint.NewMemSink()
	stats := &CheckpointStats{}

	// First attempt: stop at the second pause point.
	var pauses atomic.Uint64
	ck := &Checkpointing{
		Every: ckEvery,
		Sink:  sink,
		Stats: stats,
		ShouldStop: func() (string, bool) {
			return "test preemption", pauses.Add(1) >= 2
		},
	}
	_, err := runKernelCheckpointed(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel, ckKey, ck)
	if !errors.Is(err, ErrCellPreempted) {
		t.Fatalf("want ErrCellPreempted, got %v", err)
	}
	if !strings.Contains(err.Error(), "test preemption") {
		t.Errorf("preemption error lacks the reason: %v", err)
	}
	if _, ok := sink.Load(checkpoint.SinkKey(ckKey)); !ok {
		t.Fatal("no checkpoint in the sink after preemption")
	}
	written, restored, bytes, _ := stats.Snapshot()
	if written < 2 || bytes == 0 || restored != 0 {
		t.Fatalf("after preemption: written=%d restored=%d bytes=%d", written, restored, bytes)
	}

	// Second attempt: resume and run to completion.
	var resumedFrom atomic.Uint64
	ck2 := ck.ForCell(nil, func(saved uint64) { resumedFrom.Store(saved) })
	got, err := runKernelCheckpointed(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel, ckKey, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, control) {
		t.Fatalf("resumed metrics differ from uninterrupted run:\n got %+v\nwant %+v", got, control)
	}
	if resumedFrom.Load() == 0 {
		t.Error("OnRestore not called with a nonzero cycle")
	}
	if _, _, _, saved := stats.Snapshot(); saved == 0 {
		t.Error("resume_cycles_saved not accumulated")
	}
	if _, ok := sink.Load(checkpoint.SinkKey(ckKey)); ok {
		t.Error("checkpoint not deleted after completion")
	}
}

// TestCheckpointCorruptIsDiscarded plants garbage under the cell's sink
// key: the run must discard it, start from cycle zero and still produce
// the uninterrupted metrics.
func TestCheckpointCorruptIsDiscarded(t *testing.T) {
	control := ckControl(t)
	sink := checkpoint.NewMemSink()
	sink.Store(checkpoint.SinkKey(ckKey), []byte("definitely not a checkpoint"))
	stats := &CheckpointStats{}
	ck := &Checkpointing{Every: ckEvery, Sink: sink, Stats: stats}
	got, err := runKernelCheckpointed(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel, ckKey, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, control) {
		t.Fatalf("metrics after discarding corrupt checkpoint differ:\n got %+v\nwant %+v", got, control)
	}
	if _, restored, _, _ := stats.Snapshot(); restored != 0 {
		t.Error("corrupt checkpoint counted as restored")
	}
}

// TestCheckpointKeyMismatchIsDiscarded stores a valid checkpoint that
// belongs to a different cell under this cell's sink key.
func TestCheckpointKeyMismatchIsDiscarded(t *testing.T) {
	sink := checkpoint.NewMemSink()
	var pauses atomic.Uint64
	ck := &Checkpointing{
		Every:      ckEvery,
		Sink:       sink,
		ShouldStop: func() (string, bool) { return "seed", pauses.Add(1) >= 1 },
	}
	if _, err := runKernelCheckpointed(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel, "other-cell", ck); !errors.Is(err, ErrCellPreempted) {
		t.Fatalf("seeding preemption: %v", err)
	}
	data, ok := sink.Load(checkpoint.SinkKey("other-cell"))
	if !ok {
		t.Fatal("no seeded checkpoint")
	}
	sink.Store(checkpoint.SinkKey(ckKey), data)

	stats := &CheckpointStats{}
	ck2 := &Checkpointing{Every: ckEvery, Sink: sink, Stats: stats}
	if _, err := runKernelCheckpointed(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel, ckKey, ck2); err != nil {
		t.Fatal(err)
	}
	if _, restored, _, _ := stats.Snapshot(); restored != 0 {
		t.Error("foreign checkpoint counted as restored")
	}
}

// TestCheckpointFaultInjection exercises both injection points: a write
// fault suppresses checkpoints without failing the run; a restore fault
// drops a stored checkpoint and the run completes clean.
func TestCheckpointFaultInjection(t *testing.T) {
	defer faultinject.Disarm()

	arm := func(point string) {
		in, err := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
			{Point: point, Action: faultinject.ActionError, Error: "injected"},
		}})
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(in)
	}

	control := ckControl(t)
	sink := checkpoint.NewMemSink()
	stats := &CheckpointStats{}

	arm(faultinject.PointCheckpointWrite)
	ck := &Checkpointing{Every: ckEvery, Sink: sink, Stats: stats}
	got, err := runKernelCheckpointed(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel, ckKey, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, control) {
		t.Fatal("write-fault run diverged from control")
	}
	if written, _, _, _ := stats.Snapshot(); written != 0 {
		t.Fatalf("checkpoints written despite injected write fault: %d", written)
	}

	// Seed a real checkpoint, then fault the restore path.
	faultinject.Disarm()
	var pauses atomic.Uint64
	seed := &Checkpointing{
		Every:      ckEvery,
		Sink:       sink,
		ShouldStop: func() (string, bool) { return "seed", pauses.Add(1) >= 1 },
	}
	if _, err := runKernelCheckpointed(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel, ckKey, seed); !errors.Is(err, ErrCellPreempted) {
		t.Fatalf("seeding preemption: %v", err)
	}
	arm(faultinject.PointCheckpointRestore)
	stats2 := &CheckpointStats{}
	ck2 := &Checkpointing{Every: ckEvery, Sink: sink, Stats: stats2}
	got, err = runKernelCheckpointed(ckBuilder(t), kernels.TLPFine, KernelMachineConfig(), ckLabel, ckKey, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, control) {
		t.Fatal("restore-fault run diverged from control")
	}
	if _, restored, _, _ := stats2.Snapshot(); restored != 0 {
		t.Error("restore counted despite injected restore fault")
	}
}

// TestOptionsRoutesCheckpointing verifies the Options plumbing: a keyed
// kernel cell under an enabled Checkpointing config goes through the
// checkpointed path (visible via the write counters) and its result is
// identical to the plain path's.
func TestOptionsRoutesCheckpointing(t *testing.T) {
	control := ckControl(t)
	stats := &CheckpointStats{}
	opt := Options{
		Workers: 1,
		Cache:   runner.NewCache(),
		Checkpoint: &Checkpointing{
			Every: ckEvery,
			Sink:  checkpoint.NewMemSink(),
			Stats: stats,
		},
	}
	got, err := opt.runKernel(ckKey, func() (Builder, error) {
		return mm.New(mm.DefaultConfig(16))
	}, kernels.TLPFine, KernelMachineConfig(), ckLabel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, control) {
		t.Fatal("checkpointed cell result diverged from plain run")
	}
	if written, _, _, _ := stats.Snapshot(); written == 0 {
		t.Fatal("keyed cell did not take the checkpointed path")
	}

	// An unkeyed cell must bypass checkpointing even when configured.
	before, _, _, _ := stats.Snapshot()
	if _, err := opt.runKernel("", func() (Builder, error) {
		return mm.New(mm.DefaultConfig(16))
	}, kernels.Serial, KernelMachineConfig(), "mm/serial/16"); err != nil {
		t.Fatal(err)
	}
	if after, _, _, _ := stats.Snapshot(); after != before {
		t.Fatal("unkeyed cell wrote checkpoints")
	}
}
