package experiments

import (
	"context"
	"fmt"
	"strings"

	"smtexplore/internal/kernels"
	"smtexplore/internal/mem"
	"smtexplore/internal/runner"
	"smtexplore/internal/smt"
)

// SensitivityPoint is one configuration of a µarchitecture sweep.
type SensitivityPoint struct {
	Param   string
	Value   string
	Metrics KernelMetrics
}

// Variant mutates a machine configuration for one sweep point.
type Variant struct {
	Param string
	Value string
	Apply func(*smt.Config)
}

// DefaultVariants sweeps the design parameters the paper's analysis
// points at: the statically partitioned buffer sizes, the front-end
// width, the halt transition cost, the machine-clear penalty and the L2
// capacity.
func DefaultVariants() []Variant {
	l2 := func(kb int) func(*smt.Config) {
		return func(c *smt.Config) {
			c.Mem.L2 = mem.CacheConfig{Size: kb << 10, LineSize: 64, Assoc: 8, Latency: 18}
		}
	}
	return []Variant{
		{"baseline", "scaled kernel machine", func(*smt.Config) {}},
		{"rob", "64", func(c *smt.Config) { c.ROB = 64 }},
		{"rob", "256", func(c *smt.Config) { c.ROB = 256 }},
		{"alloc-width", "2", func(c *smt.Config) { c.AllocWidth = 2; c.RetireWidth = 2 }},
		{"alloc-width", "4", func(c *smt.Config) { c.AllocWidth = 4; c.RetireWidth = 4 }},
		{"partitioning", "fully shared", func(c *smt.Config) { c.NoStaticPartition = true }},
		{"halt-wake", "100 cycles", func(c *smt.Config) { c.HaltWakeLatency = 100 }},
		{"machine-clear", "disabled", func(c *smt.Config) { c.MachineClearPenalty = 0 }},
		{"l2", "16KB", l2(16)},
		{"l2", "128KB", l2(128)},
	}
}

// Sensitivity runs the builder in the given mode under every variant of
// the scaled kernel machine, one concurrent cell per variant. mkBuilder
// is invoked inside each cell and must be safe for concurrent use
// (i.e. construct a fresh Builder per call, as every harness closure
// does). Points are uncached: the builder is opaque, so no content key
// can identify the cell.
func Sensitivity(ctx context.Context, opt Options, mkBuilder func() (Builder, error), mode kernels.Mode, variants []Variant) ([]SensitivityPoint, error) {
	return runner.Map(ctx, opt.Workers, variants, func(_ context.Context, v Variant) (SensitivityPoint, error) {
		mcfg := KernelMachineConfig()
		v.Apply(&mcfg)
		if err := mcfg.Validate(); err != nil {
			return SensitivityPoint{}, fmt.Errorf("sensitivity %s=%s: %w", v.Param, v.Value, err)
		}
		b, err := mkBuilder()
		if err != nil {
			return SensitivityPoint{}, err
		}
		met, err := RunKernel(b, mode, mcfg, fmt.Sprintf("%s=%s", v.Param, v.Value))
		if err != nil {
			return SensitivityPoint{}, fmt.Errorf("sensitivity %s=%s: %w", v.Param, v.Value, err)
		}
		return SensitivityPoint{Param: v.Param, Value: v.Value, Metrics: met}, nil
	})
}

// FormatSensitivity renders a sweep with each point's cycle delta against
// the first (baseline) row.
func FormatSensitivity(title string, points []SensitivityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s %-22s %12s %8s %12s\n", "param", "value", "cycles", "vs-base", "l2-misses")
	if len(points) == 0 {
		return b.String()
	}
	base := float64(points[0].Metrics.Cycles)
	for i, p := range points {
		rel := "-"
		if i > 0 {
			rel = fmt.Sprintf("%+.1f%%", (float64(p.Metrics.Cycles)/base-1)*100)
		}
		fmt.Fprintf(&b, "%-16s %-22s %12d %8s %12d\n",
			p.Param, p.Value, p.Metrics.Cycles, rel, p.Metrics.L2MissesReported())
	}
	return b.String()
}
