package experiments

import (
	"smtexplore/internal/kernels"
	"smtexplore/internal/runner"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

// Options configures the concurrent execution of a harness. The zero
// value runs on all cores with no result reuse; DefaultOptions adds a
// fresh cache. Every harness is deterministic under any Options value:
// cells are isolated simulations returned in submission order, so the
// output is byte-identical whether Workers is 1 or 100 and whether the
// cache is shared, fresh or nil.
type Options struct {
	// Workers bounds the concurrent simulation cells (≤0 → GOMAXPROCS).
	Workers int
	// Cache reuses results of identical cells — shared solo baselines,
	// Figure 1 duos reappearing as Figure 2 diagonals, default kernel
	// configurations repeated across ablation studies. Share one cache
	// across harness calls to dedup between figures; nil disables reuse.
	Cache *runner.Cache
	// Observe emits per-cell observability artifacts (pipeline trace,
	// occupancy series, metrics snapshot) for matching cells; nil
	// observes nothing. Observed cells always simulate — the cache is
	// bypassed for them in both directions.
	Observe *Observe
	// Checkpoint makes keyed kernel cells pausable: they periodically
	// snapshot the machine into the sink, resume from a stored snapshot
	// instead of cycle zero, and yield ErrCellPreempted when asked to
	// stop. Nil (or a disabled config) runs cells uninterruptibly.
	// Observed cells are never checkpointed (instruments hold live
	// callbacks a snapshot cannot carry).
	Checkpoint *Checkpointing
	// Meter, when set, is told how each cached cell lookup was
	// satisfied (memory, tier read, or simulated — and the tier bytes
	// moved). The service binds a per-tenant meter here for store
	// accounting; nil meters nothing.
	Meter runner.Meter
}

// DefaultOptions is all cores plus a fresh per-call cache.
func DefaultOptions() Options {
	return Options{Cache: runner.NewCache()}
}

// measureCPI is the cached single-cell stream measurement. The key is
// the full cell content: machine configuration, ordered stream specs
// (order matters — the simulated core is not perfectly symmetric in its
// context index) and window.
func (o Options) measureCPI(mcfg smt.Config, specs []streams.Spec, window uint64) ([]float64, error) {
	if label := StreamCellLabel(specs, window); o.Observe.wants(label) {
		ins := o.Observe.instruments()
		cpi, err := measureCPIWith(mcfg, specs, window, ins)
		if err != nil {
			return nil, err
		}
		return cpi, o.export(ins, label, false)
	}
	return runner.CachedMetered(o.Cache, StreamCellKey(mcfg, specs, window), o.Meter, func() ([]float64, error) {
		return MeasureCPI(mcfg, specs, window)
	})
}

// runKernel is the cached single-cell kernel run. The builder is
// constructed inside the cell so concurrent cells share no state; key
// identifies the cell content (machine config, kernel config, mode,
// label) and may be empty to bypass the cache (opaque builders).
func (o Options) runKernel(key string, build func() (Builder, error), mode kernels.Mode, mcfg smt.Config, label string) (KernelMetrics, error) {
	if o.Observe.wants(label) {
		b, err := build()
		if err != nil {
			return KernelMetrics{}, err
		}
		ins := o.Observe.instruments()
		km, err := runKernelWith(b, mode, mcfg, label, ins)
		if err != nil {
			return KernelMetrics{}, err
		}
		return km, o.export(ins, label, true)
	}
	compute := func() (KernelMetrics, error) {
		b, err := build()
		if err != nil {
			return KernelMetrics{}, err
		}
		if key != "" && o.Checkpoint.enabled() {
			return runKernelCheckpointed(b, mode, mcfg, label, key, o.Checkpoint)
		}
		return RunKernel(b, mode, mcfg, label)
	}
	if key == "" {
		return compute()
	}
	return runner.CachedMetered(o.Cache, key, o.Meter, compute)
}
