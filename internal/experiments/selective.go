package experiments

import (
	"context"
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/lu"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/syncprim"
)

// SelectiveHaltResult reports the §3.1 selective-halting methodology
// applied to the LU coarse scheme, whose three phase barriers have very
// different wait durations (the second thread idles through every
// diagonal-tile factorisation).
type SelectiveHaltResult struct {
	// Baseline is the all-spin(+pause) run used for profiling.
	Baseline KernelMetrics
	// Planned is the rerun with halt embedded in the long-duration
	// barriers only.
	Planned KernelMetrics
	// WaitProfile is the measured per-cell wait-cycle profile of the
	// baseline run.
	WaitProfile map[isa.Cell]uint64
	// HaltCells are the barrier cells the plan selected for halting.
	HaltCells []isa.Cell
	// Threshold is the wait-cycle cutoff used.
	Threshold uint64
}

// SelectiveHaltLU runs the two-pass methodology on LU (dimension n):
// first an all-spin profiling pass measuring the time the threads spend
// on every barrier, then a rerun with processor halting embedded only in
// the barriers where the waits are a considerable portion of execution
// time. The passes are inherently sequential (the second consumes the
// first's wait profile), so opt contributes no fan-out here; ctx is
// checked between the passes.
func SelectiveHaltLU(ctx context.Context, opt Options, n int) (SelectiveHaltResult, error) {
	if err := ctx.Err(); err != nil {
		return SelectiveHaltResult{}, err
	}
	// Pass 1: profile with the default spin+pause barriers.
	base, err := lu.New(lu.DefaultConfig(n))
	if err != nil {
		return SelectiveHaltResult{}, err
	}
	progs, err := base.Programs(kernels.TLPCoarse)
	if err != nil {
		return SelectiveHaltResult{}, err
	}
	m := smt.New(KernelMachineConfig())
	m.LoadProgram(kernels.WorkerTid, progs[0])
	m.LoadProgram(kernels.HelperTid, progs[1])
	res, err := m.Run(maxKernelCycles)
	if err != nil {
		return SelectiveHaltResult{}, err
	}
	if !res.Completed {
		return SelectiveHaltResult{}, fmt.Errorf("experiments: selective-halt profiling pass did not complete")
	}
	profile := m.WaitProfile()
	baseline := metricsFromMachine(m, "lu", kernels.TLPCoarse, fmt.Sprintf("N=%d", n))
	if err := ctx.Err(); err != nil {
		return SelectiveHaltResult{}, err
	}

	// The paper's criterion: halt where threads "spin for a considerable
	// portion of their total execution time". Use 2% of the profiled
	// runtime as the cutoff.
	threshold := m.Cycle() / 50
	plan := syncprim.PlanFromProfile(profile, threshold, syncprim.SpinPause)
	var haltCells []isa.Cell
	for c, k := range plan {
		if k == syncprim.HaltWait {
			haltCells = append(haltCells, c)
		}
	}

	// Pass 2: rerun with the plan. The kernel is rebuilt identically
	// (same cell allocation order), so the plan's cells line up. The
	// cell is uncached (key ""): the plan's map has no deterministic
	// rendering to key on.
	met, err := opt.runKernel("", func() (Builder, error) {
		cfg := lu.DefaultConfig(n)
		cfg.WaitPlan = plan
		return lu.New(cfg)
	}, kernels.TLPCoarse, KernelMachineConfig(), fmt.Sprintf("N=%d", n))
	if err != nil {
		return SelectiveHaltResult{}, err
	}
	return SelectiveHaltResult{
		Baseline:    baseline,
		Planned:     met,
		WaitProfile: profile,
		HaltCells:   haltCells,
		Threshold:   threshold,
	}, nil
}

// metricsFromMachine extracts KernelMetrics from a finished machine (for
// runs driven outside RunKernel).
func metricsFromMachine(m *smt.Machine, kernel string, mode kernels.Mode, label string) KernelMetrics {
	c := m.Counters()
	h := m.Hierarchy()
	return KernelMetrics{
		Kernel:              kernel,
		Mode:                mode,
		Label:               label,
		Cycles:              m.Cycle(),
		L2ReadMissesWorker:  h.Thread(kernels.WorkerTid).L2ReadMisses,
		L2ReadMissesBoth:    h.Thread(0).L2ReadMisses + h.Thread(1).L2ReadMisses,
		ResourceStallCycles: c.Total(perfmon.ResourceStallCycles),
		UopsRetired:         c.Total(perfmon.UopsRetired),
		SpinUops:            c.Total(perfmon.SpinUopsRetired),
		MachineClears:       c.Total(perfmon.MachineClears),
		HaltTransitions:     c.Total(perfmon.HaltTransitions),
		PipelineFlushes:     c.Total(perfmon.PipelineFlushes),
		WorkerInstr:         c.Get(perfmon.InstrRetired, kernels.WorkerTid),
		HelperInstr:         c.Get(perfmon.InstrRetired, kernels.HelperTid),
	}
}

// FormatSelectiveHalt renders the study.
func FormatSelectiveHalt(r SelectiveHaltResult) string {
	out := fmt.Sprintf("Selective halting (§3.1) on LU tlp-coarse, threshold %d wait cycles\n", r.Threshold)
	out += fmt.Sprintf("%-28s %12s %12s %10s %10s\n", "pass", "cycles", "spin-uops", "halts", "waits")
	out += fmt.Sprintf("%-28s %12d %12d %10d %10d\n", "all spin+pause (profiling)",
		r.Baseline.Cycles, r.Baseline.SpinUops, r.Baseline.HaltTransitions, len(r.WaitProfile))
	out += fmt.Sprintf("%-28s %12d %12d %10d %10d\n", "selective halt",
		r.Planned.Cycles, r.Planned.SpinUops, r.Planned.HaltTransitions, len(r.HaltCells))
	return out
}
