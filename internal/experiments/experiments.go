// Package experiments contains the reproduction harness: one entry point
// per figure and table of the paper's evaluation, each running the
// relevant workloads on a configured simulated machine and returning the
// same rows/series the paper reports.
//
// Two machine configurations are used. Stream experiments (Figures 1-2)
// run on the full-size NetBurst-like machine, since they are
// register/port-bound. Kernel experiments (Figures 3-5, Table 1) run on
// the scaled machine: the L2 is shrunk to 32 KB so the scaled problem
// sizes oversubscribe it the way the paper's inputs oversubscribed the
// Xeon's 512 KB — working-set:cache regimes, not absolute sizes, are what
// the substitution preserves.
package experiments

import (
	"fmt"

	"smtexplore/internal/kernels"
	"smtexplore/internal/mem"
	"smtexplore/internal/obs"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

// StreamMachineConfig is the processor configuration for the synthetic
// stream experiments of Section 4.
func StreamMachineConfig() smt.Config {
	return smt.DefaultConfig()
}

// KernelMachineConfig is the processor configuration for the benchmark
// experiments of Section 5 (scaled L2; see package comment).
func KernelMachineConfig() smt.Config {
	cfg := smt.DefaultConfig()
	cfg.Mem.L2 = mem.CacheConfig{Size: 32 << 10, LineSize: 64, Assoc: 8, Latency: 18}
	return cfg
}

// Builder is the contract every kernel satisfies (mm, lu, cg, bt).
type Builder interface {
	Name() string
	Modes() []kernels.Mode
	Programs(mode kernels.Mode) ([2]trace.Program, error)
}

// KernelMetrics is one row of a Figure 3/4/5 panel group: the paper's
// three monitored events plus execution time and supporting counters.
type KernelMetrics struct {
	Kernel string
	Mode   kernels.Mode
	Label  string // size/instance label, e.g. "N=128"

	// Cycles is total execution time in core cycles (Figure (a) panels).
	Cycles uint64
	// L2ReadMissesWorker is the worker thread's demand L2 read misses —
	// the paper's Figure (b) series for the SPR methods.
	L2ReadMissesWorker uint64
	// L2ReadMissesBoth sums both threads — the paper's Figure (b) series
	// for the TLP methods.
	L2ReadMissesBoth uint64
	// ResourceStallCycles is the store-buffer allocator stall total of
	// both threads (Figure (c)).
	ResourceStallCycles uint64
	// UopsRetired is the µops retired by both threads, including
	// spin-loop traffic (Figure (d)).
	UopsRetired uint64

	// Supporting counters for the analysis sections.
	SpinUops        uint64
	MachineClears   uint64
	HaltTransitions uint64
	PipelineFlushes uint64
	WorkerInstr     uint64
	HelperInstr     uint64
}

// L2MissesReported follows the paper's reporting convention: for the pure
// software-prefetch method only the working thread's misses are presented;
// for all other methods the sum of both threads.
func (m KernelMetrics) L2MissesReported() uint64 {
	if m.Mode == kernels.TLPPfetch {
		return m.L2ReadMissesWorker
	}
	return m.L2ReadMissesBoth
}

// maxKernelCycles bounds any single kernel run (a generous ceiling; runs
// finishing by completion, not budget).
const maxKernelCycles = 8_000_000_000

// RunKernel executes one (kernel, mode) configuration to completion on a
// fresh machine and collects the monitored events.
func RunKernel(b Builder, mode kernels.Mode, mcfg smt.Config, label string) (KernelMetrics, error) {
	return runKernelWith(b, mode, mcfg, label, nil)
}

// runKernelWith is RunKernel with an optional instrument bundle attached
// to the machine for the duration of the run.
func runKernelWith(b Builder, mode kernels.Mode, mcfg smt.Config, label string, ins *obs.Instruments) (KernelMetrics, error) {
	progs, err := b.Programs(mode)
	if err != nil {
		return KernelMetrics{}, err
	}
	m := smt.New(mcfg)
	// Close releases abandoned stream generators when the run errors out
	// (deadlock, budget); a completed run has already closed its own.
	defer m.Close()
	if ins != nil {
		ins.Attach(m)
	}
	m.LoadProgram(kernels.WorkerTid, progs[0])
	if progs[1] != nil {
		m.LoadProgram(kernels.HelperTid, progs[1])
	}
	res, err := m.Run(maxKernelCycles)
	if err != nil {
		return KernelMetrics{}, fmt.Errorf("experiments: %s/%v: %w", b.Name(), mode, err)
	}
	if !res.Completed {
		return KernelMetrics{}, fmt.Errorf("experiments: %s/%v did not complete within %d cycles", b.Name(), mode, uint64(maxKernelCycles))
	}
	return collectKernelMetrics(b, mode, label, m), nil
}

// collectKernelMetrics reads the monitored events off a completed run.
func collectKernelMetrics(b Builder, mode kernels.Mode, label string, m *smt.Machine) KernelMetrics {
	c := m.Counters()
	h := m.Hierarchy()
	return KernelMetrics{
		Kernel:              b.Name(),
		Mode:                mode,
		Label:               label,
		Cycles:              m.Cycle(),
		L2ReadMissesWorker:  h.Thread(kernels.WorkerTid).L2ReadMisses,
		L2ReadMissesBoth:    h.Thread(0).L2ReadMisses + h.Thread(1).L2ReadMisses,
		ResourceStallCycles: c.Total(perfmon.ResourceStallCycles),
		UopsRetired:         c.Total(perfmon.UopsRetired),
		SpinUops:            c.Total(perfmon.SpinUopsRetired),
		MachineClears:       c.Total(perfmon.MachineClears),
		HaltTransitions:     c.Total(perfmon.HaltTransitions),
		PipelineFlushes:     c.Total(perfmon.PipelineFlushes),
		WorkerInstr:         c.Get(perfmon.InstrRetired, kernels.WorkerTid),
		HelperInstr:         c.Get(perfmon.InstrRetired, kernels.HelperTid),
	}
}

// Relative returns the execution-time factor of m against the serial
// baseline (>1 means slower than serial).
func Relative(m, serial KernelMetrics) float64 {
	return float64(m.Cycles) / float64(serial.Cycles)
}
