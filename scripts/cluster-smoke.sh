#!/bin/sh
# Cluster smoke test of the coordinator/worker sharding stack, run by
# the cluster-smoke CI job and `make cluster-smoke`. One coordinator,
# three -join workers on a shared disk store, four phases:
#
#   A. parity: Figure 1 generated through the coordinator is
#      byte-identical to the direct `streams -fig 1` CLI output;
#   B. warm restart: the whole worker fleet is drained and replaced,
#      and the fresh fleet serves a resubmitted Figure 1 entirely from
#      the shared store — zero cells simulated, bytes identical;
#   C. work stealing: jobs queued directly on one worker make the
#      coordinator reroute that owner's cells to idle workers
#      (smtd_cluster_steals_total advances);
#   D. chaos: SIGKILL the worker running an mm-64 kernel cell mid-run;
#      the coordinator migrates the cell to a survivor, which resumes
#      from the dead worker's checkpoint in the shared store and
#      produces a result byte-identical to an uninterrupted control.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
bin="$work/bin"
mkdir -p "$bin"

PIDS=""
cleanup() {
	for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin/smtd" ./cmd/smtd
go build -o "$bin/smtctl" ./cmd/smtctl

# start_daemon <tag> [smtd flags...] — binds a random port, writes
# $work/<tag>.addr and $work/<tag>.pid, logs to $work/<tag>.log.
start_daemon() {
	tag="$1"
	shift
	rm -f "$work/$tag.addr"
	"$bin/smtd" -addr 127.0.0.1:0 -addr-file "$work/$tag.addr" "$@" \
		>>"$work/$tag.log" 2>&1 &
	pid=$!
	PIDS="$PIDS $pid"
	echo "$pid" >"$work/$tag.pid"
	i=0
	while [ ! -s "$work/$tag.addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "$tag never wrote its addr file" >&2
			cat "$work/$tag.log" >&2
			exit 1
		fi
		kill -0 "$pid" 2>/dev/null || {
			echo "$tag exited early" >&2
			cat "$work/$tag.log" >&2
			exit 1
		}
		sleep 0.1
	done
}

addr_of() { cat "$work/$1.addr"; }
pid_of() { cat "$work/$1.pid"; }

stop_daemon() {
	p="$(pid_of "$1")"
	kill -TERM "$p"
	wait "$p"
}

kill9_daemon() {
	p="$(pid_of "$1")"
	kill -9 "$p"
	wait "$p" 2>/dev/null || true
}

ctl() {
	"$bin/smtctl" -addr "$(addr_of coord)" "$@"
}

# metric <tag> <name>
metric() {
	curl -sf "http://$(addr_of "$1")/metrics" | awk -v m="$2" '$1 == m { print $2 }'
}

# Workers share one store directory: results and checkpoints written by
# any worker are readable by every other, which is what warm restarts
# and checkpoint migration lean on.
start_worker() {
	start_daemon "$1" -join "$(addr_of coord)" -name "$1" \
		-store "$work/store" -checkpoint-cycles 5000 -jobs 1 -workers 2
}

# wait_live <n> — block until the coordinator sees n live workers.
wait_live() {
	i=0
	until curl -sf "http://$(addr_of coord)/v1/cluster" | grep -q "\"live\": $1,"; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "fleet never reached $1 live workers" >&2
			curl -s "http://$(addr_of coord)/v1/cluster" >&2
			exit 1
		fi
		sleep 0.1
	done
}

echo "== -peer outside an HA coordinator setup is refused cleanly"
# A plain daemon must not half-enter HA mode: -peer without -coordinator
# (and -coordinator -peer without the shared -store) are usage errors,
# not silently ignored flags.
if "$bin/smtd" -peer 127.0.0.1:1 >/dev/null 2>"$work/peer-refused.txt"; then
	echo "smtd accepted -peer without -coordinator" >&2
	exit 1
fi
grep -q -- "-peer requires -coordinator" "$work/peer-refused.txt"
if "$bin/smtd" -coordinator -peer 127.0.0.1:1 >/dev/null 2>"$work/peer-nostore.txt"; then
	echo "smtd accepted -coordinator -peer without -store" >&2
	exit 1
fi
grep -q -- "-peer requires -store" "$work/peer-nostore.txt"

echo "== start coordinator + 3 joined workers on a shared store"
start_daemon coord -coordinator -health-interval 100ms
start_worker w1
start_worker w2
start_worker w3
wait_live 3
ctl cluster >"$work/cluster.txt"
grep -q "live 3/3" "$work/cluster.txt"

echo "== phase A: fig1 via the coordinator == direct CLI, byte for byte"
go run ./cmd/streams -fig 1 >"$work/fig1-direct.txt"
jf="$(ctl submit -fig 1)"
ctl wait -q "$jf"
ctl result -cell 0 -text "$jf" >"$work/fig1-cluster.txt"
diff "$work/fig1-direct.txt" "$work/fig1-cluster.txt"

echo "== phase B: fresh fleet serves a warm fig1 with zero simulations"
for w in w1 w2 w3; do stop_daemon "$w"; done
start_worker w1
start_worker w2
start_worker w3
wait_live 3
jw="$(ctl submit -fig 1)"
ctl wait -q "$jw"
ctl result -cell 0 -text "$jw" >"$work/fig1-warm.txt"
diff "$work/fig1-direct.txt" "$work/fig1-warm.txt"
sim=0
for w in w1 w2 w3; do
	sim=$((sim + $(metric "$w" smtd_cells_simulated_total)))
done
if [ "$sim" -ne 0 ]; then
	echo "warm fleet simulated $sim cells, want 0 (shared store must serve them)" >&2
	exit 1
fi

echo "== phase C: cells owned by an overloaded worker are stolen"
# Queue kernel jobs directly on w1 (its -jobs 1 keeps the extras
# queued), then batch stream cells through the coordinator: groups
# owned by w1 must reroute to the idle workers. The sizes differ so
# the content-keyed idempotency dedupe sees three jobs, not one (mm
# sizes must be powers of two; largest first keeps the queue deep
# while the coordinator routes the batch).
for size in 64 32 16; do
	"$bin/smtctl" -addr "$(addr_of w1)" \
		submit -kernel mm -mode tlp-coarse -size "$size" >>"$work/direct-jobs.txt"
done
{
	printf '{"cells":['
	sep=""
	w=50000
	while [ "$w" -lt 50016 ]; do
		printf '%s{"type":"stream","window":%d,"streams":[{"kind":"fadd"},{"kind":"iload"}]}' "$sep" "$w"
		sep=","
		w=$((w + 1))
	done
	printf ']}\n'
} >"$work/batch.json"
js="$(ctl submit -f "$work/batch.json")"
ctl wait -q "$js"
steals="$(metric coord smtd_cluster_steals_total)"
if [ "$steals" -lt 1 ]; then
	echo "smtd_cluster_steals_total = $steals, want >= 1" >&2
	curl -s "http://$(addr_of coord)/v1/cluster" >&2
	exit 1
fi
while read -r id; do
	"$bin/smtctl" -addr "$(addr_of w1)" wait -q "$id"
done <"$work/direct-jobs.txt"

echo "== phase D: control run for the chaos comparison (separate store)"
start_daemon ctrl -store "$work/store-control"
jc="$("$bin/smtctl" -addr "$(addr_of ctrl)" submit -kernel mm -mode tlp-fine -size 64)"
"$bin/smtctl" -addr "$(addr_of ctrl)" wait -q "$jc"
"$bin/smtctl" -addr "$(addr_of ctrl)" result -cell 0 "$jc" >"$work/kernel-control.json"
stop_daemon ctrl

echo "== phase D: SIGKILL the worker mid-kernel, survivor resumes from checkpoint"
for w in w1 w2 w3; do
	metric "$w" smtd_checkpoints_written_total >"$work/$w.ckpt0" || echo 0 >"$work/$w.ckpt0"
done
jx="$(ctl submit -kernel mm -mode tlp-fine -size 64)"
victim=""
i=0
while [ -z "$victim" ]; do
	for w in w1 w2 w3; do
		base="$(cat "$work/$w.ckpt0")"
		now="$(metric "$w" smtd_checkpoints_written_total 2>/dev/null || echo "$base")"
		if [ "${now:-0}" -gt "${base:-0}" ]; then
			victim="$w"
			break
		fi
	done
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		echo "no worker wrote a checkpoint for the chaos kernel" >&2
		curl -s "http://$(addr_of coord)/v1/cluster" >&2
		exit 1
	fi
	sleep 0.05
done
echo "   victim: $victim"
kill9_daemon "$victim"
ctl wait -q "$jx"
recovered="$(metric coord smtd_cluster_jobs_recovered_total)"
lost="$(metric coord smtd_cluster_workers_lost_total)"
if [ "$recovered" -lt 1 ] || [ "$lost" -lt 1 ]; then
	echo "jobs_recovered=$recovered workers_lost=$lost, want both >= 1" >&2
	curl -s "http://$(addr_of coord)/metrics" >&2
	exit 1
fi
saved=0
for w in w1 w2 w3; do
	[ "$w" = "$victim" ] && continue
	saved=$((saved + $(metric "$w" smtd_resume_cycles_saved_total)))
done
if [ "$saved" -le 0 ]; then
	echo "survivors saved $saved resume cycles: the migrated cell re-ran from cycle zero" >&2
	exit 1
fi
ctl result -cell 0 "$jx" >"$work/kernel-chaos.json"
diff "$work/kernel-control.json" "$work/kernel-chaos.json"

for w in w1 w2 w3; do
	[ "$w" = "$victim" ] && continue
	stop_daemon "$w"
done
stop_daemon coord
grep -q "smtd: bye" "$work/coord.log"

echo "cluster smoke OK: fig1 byte-identical through the coordinator, warm fleet simulated 0 cells, $steals steal(s), killed worker's kernel resumed on a survivor ($saved cycles saved) byte-identical to control"
