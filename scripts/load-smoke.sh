#!/bin/sh
# Multi-tenant isolation smoke, run by the load-smoke CI job and
# `make load-smoke`. The loadgen harness drives open-loop Poisson
# traffic at smtd and proves the SLOs the tenancy layer exists for:
#
#   A. solo baseline: the light tenant alone against a quota-configured
#      daemon; its report is the reference for the relative assertions;
#   B. contention: the same light tenant plus a 10x-heavier neighbour
#      (10x the arrival rate, 8x the cells per job). The light tenant
#      must keep >= 80% of its solo goodput and <= 2x its solo p99
#      while the heavy tenant is shed with named quota causes — noisy
#      neighbours feel their own backpressure, not their victim's;
#   C. chaos: a coordinator with two workers on a shared store, with
#      loadgen SIGKILLing one worker mid-run. Every light-tenant job
#      must still finish (migration, not failure).
#
# Each run re-starts the daemon so result caching cannot flatter the
# contended run. Arrival schedules are seeded, so the light tenant
# submits the identical job sequence in phases A and B.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
bin="$work/bin"
mkdir -p "$bin"

PIDS=""
cleanup() {
	for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin/smtd" ./cmd/smtd
go build -o "$bin/loadgen" ./cmd/loadgen

# start_daemon <tag> [smtd flags...] — binds a random port, writes
# $work/<tag>.addr and $work/<tag>.pid, logs to $work/<tag>.log.
start_daemon() {
	tag="$1"
	shift
	rm -f "$work/$tag.addr"
	"$bin/smtd" -addr 127.0.0.1:0 -addr-file "$work/$tag.addr" "$@" \
		>>"$work/$tag.log" 2>&1 &
	pid=$!
	PIDS="$PIDS $pid"
	echo "$pid" >"$work/$tag.pid"
	i=0
	while [ ! -s "$work/$tag.addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "$tag never wrote its addr file" >&2
			cat "$work/$tag.log" >&2
			exit 1
		fi
		kill -0 "$pid" 2>/dev/null || {
			echo "$tag exited early" >&2
			cat "$work/$tag.log" >&2
			exit 1
		}
		sleep 0.1
	done
}

addr_of() { cat "$work/$1.addr"; }

stop_daemon() {
	p="$(cat "$work/$1.pid")"
	kill -TERM "$p" 2>/dev/null || true
	wait "$p" 2>/dev/null || true
}

# The quota config under test: the heavy tenant is allowed a small
# backlog and bounded concurrency; the light tenant outweighs it 8:1
# in the fair-share scheduler.
cat >"$work/tenants.json" <<'EOF'
{
  "tenants": {
    "light": {"weight": 8},
    "heavy": {"weight": 1, "max_queued_jobs": 3, "max_active_cells": 48}
  }
}
EOF

# The light tenant's traffic is identical in both scenarios (same name,
# same seed => same arrival schedule and windows).
cat >"$work/solo.json" <<'EOF'
{
  "seed": 4242,
  "duration": "5s",
  "settle": "60s",
  "tenants": [
    {"name": "light", "rate_hz": 4, "cells_per_job": 1, "priority": 5,
     "window_base": 800000}
  ]
}
EOF

cat >"$work/contended.json" <<'EOF'
{
  "seed": 4242,
  "duration": "5s",
  "settle": "60s",
  "tenants": [
    {"name": "light", "rate_hz": 4, "cells_per_job": 1, "priority": 5,
     "window_base": 800000},
    {"name": "heavy", "rate_hz": 40, "cells_per_job": 8,
     "window_base": 50000}
  ]
}
EOF

echo "== phase A: light tenant solo (baseline)"
start_daemon solo -jobs 2 -workers 2 -queue 32 \
	-tenants "$work/tenants.json" -queue-wait-target 2s
"$bin/loadgen" -scenario "$work/solo.json" -addr "$(addr_of solo)" \
	-poll 20ms -out "$work/solo-report.json" \
	-assert done-min:light:12
stop_daemon solo

echo "== phase B: light tenant vs a 10x-heavier neighbour"
start_daemon mixed -jobs 2 -workers 2 -queue 32 \
	-tenants "$work/tenants.json" -queue-wait-target 2s
"$bin/loadgen" -scenario "$work/contended.json" -addr "$(addr_of mixed)" \
	-poll 20ms -out "$work/contended-report.json" \
	-baseline "$work/solo-report.json" \
	-assert goodput-frac:light:0.8 \
	-assert p99-factor:light:2 \
	-assert done-min:light:12 \
	-assert no-failed:light \
	-assert shed-cause-min:heavy:queued-jobs:5

# The heavy tenant's sheds must show up attributed on /metrics too.
curl -sf "http://$(addr_of mixed)/metrics" >"$work/mixed.metrics"
grep -q 'smtd_tenant_shed_total{tenant="heavy",cause="queued-jobs"} [1-9]' "$work/mixed.metrics" || {
	echo "heavy tenant sheds missing from /metrics" >&2
	grep 'smtd_tenant' "$work/mixed.metrics" >&2 || true
	exit 1
}
grep -q 'smtd_tenant_jobs_admitted_total{tenant="light"} [1-9]' "$work/mixed.metrics" || {
	echo "light tenant admissions missing from /metrics" >&2
	exit 1
}
stop_daemon mixed

echo "== phase C: worker SIGKILL mid-run must not fail the light tenant"
mkdir -p "$work/store"
start_daemon coord -coordinator
start_daemon w0 -join "$(addr_of coord)" -name w0 \
	-store "$work/store" -jobs 2 -workers 2
start_daemon w1 -join "$(addr_of coord)" -name w1 \
	-store "$work/store" -jobs 2 -workers 2
i=0
until curl -sf "http://$(addr_of coord)/v1/cluster" | grep -q '"live": 2,'; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "workers never joined" >&2; exit 1; }
	sleep 0.1
done

cat >"$work/chaos.json" <<EOF
{
  "seed": 77,
  "duration": "6s",
  "settle": "60s",
  "tenants": [
    {"name": "light", "rate_hz": 4, "cells_per_job": 2, "priority": 5,
     "window_base": 400000}
  ],
  "phases": [
    {"at": "2s", "kind": "kill", "pidfile": "$work/w1.pid"}
  ]
}
EOF
"$bin/loadgen" -scenario "$work/chaos.json" -addr "$(addr_of coord)" \
	-poll 20ms -out "$work/chaos-report.json" \
	-assert no-failed:light \
	-assert done-min:light:15
stop_daemon coord
stop_daemon w0

echo "== load smoke OK"
