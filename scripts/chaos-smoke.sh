#!/bin/sh
# Chaos smoke test of the smtd failure-hardening stack, run by the
# chaos-smoke CI job and `make chaos-smoke`. Three phases, each driving
# the daemon through a deterministic fault plan (-fault-plan):
#
#   A. cell panic + wedged cell + SIGKILL mid-job: the panic is isolated
#      to its cell, the watchdog fails the wedged cell, and after an
#      unclean kill the journal re-runs the in-flight Figure 1 job on
#      restart, whose served text must be byte-identical to the direct
#      `streams -fig 1` CLI output;
#   B. disk read errors: the circuit breaker degrades the daemon to
#      memory-only caching (healthz "degraded", jobs keep succeeding
#      with identical results), then heals through healthz probes;
#   C. queue backpressure: a full queue 429s a submission and smtctl
#      retries with backoff until it is accepted;
#   D. checkpoint resume: SIGKILL the daemon mid-kernel-run with
#      -checkpoint-cycles armed; the restarted daemon must resume the
#      recovered job from the on-disk checkpoint (not cycle zero) and
#      produce a result byte-identical to an uninterrupted control run.
#
# Every phase ends with all jobs terminal; nothing may be stuck.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
bin="$work/bin"
mkdir -p "$bin"

cleanup() {
	[ -n "${SMTD_PID:-}" ] && kill -9 "$SMTD_PID" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin/smtd" ./cmd/smtd
go build -o "$bin/smtctl" ./cmd/smtctl

# start_daemon <log> [smtd flags...]
start_daemon() {
	log="$1"
	shift
	rm -f "$work/addr"
	"$bin/smtd" -addr 127.0.0.1:0 -addr-file "$work/addr" "$@" \
		>>"$work/$log" 2>&1 &
	SMTD_PID=$!
	i=0
	while [ ! -s "$work/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "smtd never wrote its addr file" >&2
			cat "$work/$log" >&2
			exit 1
		fi
		kill -0 "$SMTD_PID" 2>/dev/null || {
			echo "smtd exited early" >&2
			cat "$work/$log" >&2
			exit 1
		}
		sleep 0.1
	done
	ADDR="$(cat "$work/addr")"
}

stop_daemon() {
	kill -TERM "$SMTD_PID"
	wait "$SMTD_PID"
	SMTD_PID=
}

kill9_daemon() {
	kill -9 "$SMTD_PID"
	wait "$SMTD_PID" 2>/dev/null || true
	SMTD_PID=
}

ctl() {
	"$bin/smtctl" -addr "$ADDR" "$@"
}

metric() {
	curl -sf "http://$ADDR/metrics" | awk -v m="$1" '$1 == m { print $2 }'
}

# expect_failure <outfile> <what> <cmd...> — the command must exit
# non-zero, with its combined output captured for grepping.
expect_failure() {
	out="$1"
	what="$2"
	shift 2
	if "$@" >"$work/$out" 2>&1; then
		echo "expected $what to fail" >&2
		cat "$work/$out" >&2
		exit 1
	fi
}

# all_terminal — no job or cell may be left queued, running or pending.
all_terminal() {
	curl -sf "http://$ADDR/v1/jobs" >"$work/jobs.json"
	if grep -qE '"state": "(queued|running|pending)"' "$work/jobs.json"; then
		echo "non-terminal jobs survived the chaos:" >&2
		cat "$work/jobs.json" >&2
		exit 1
	fi
}

echo "== baseline: fault-free Figure 1 text"
go run ./cmd/streams -fig 1 >"$work/fig1-direct.txt"

echo "== phase A: panic isolation, watchdog, SIGKILL + journal recovery"
cat >"$work/plan-a.json" <<'EOF'
{
  "seed": 1,
  "rules": [
    {"point": "exec.cell", "action": "panic", "error": "chaos: injected cell panic", "count": 1},
    {"point": "exec.cell", "action": "latency", "latency_ms": 10000, "after": 1, "count": 1}
  ]
}
EOF
start_daemon smtd-a.log -store "$work/store-a" -journal "$work/journal-a" \
	-cell-timeout 2s -jobs 1 -workers 1 -fault-plan "$work/plan-a.json"
grep -q "chaos mode" "$work/smtd-a.log"

# Sacrifice 1: the injected panic must fail its cell, not the daemon.
j1="$(ctl submit -stream fadd -window 2000)"
expect_failure wait-j1.out "panicked job $j1" ctl wait "$j1"
grep -q "cell panicked" "$work/wait-j1.out"
kill -0 "$SMTD_PID" # the daemon survived the panic

# Sacrifice 2: the 10s wedge must be cut down by the 2s watchdog.
j2="$(ctl submit -stream fmul -window 2000)"
expect_failure wait-j2.out "wedged job $j2" ctl wait "$j2"
grep -q "watchdog" "$work/wait-j2.out"

# The real workload: accepted (journaled), then the daemon dies hard
# before it can finish.
fig="$(ctl submit -fig 1)"
kill9_daemon
[ "$(ls "$work/journal-a"/*.job | wc -l)" -gt 0 ]

echo "== phase A: restart recovers the in-flight job"
start_daemon smtd-a.log -store "$work/store-a" -journal "$work/journal-a"
grep -q "recovered" "$work/smtd-a.log"
g_start="$(metric smtd_goroutines)"
ctl wait "$fig"
ctl result -cell 0 -text "$fig" >"$work/fig1-chaos.txt"
diff "$work/fig1-direct.txt" "$work/fig1-chaos.txt"
all_terminal
recovered="$(metric smtd_jobs_recovered_total)"
if [ "$recovered" -lt 1 ]; then
	echo "smtd_jobs_recovered_total = $recovered, want >= 1" >&2
	exit 1
fi
sleep 1
g_end="$(metric smtd_goroutines)"
if [ "$g_end" -gt $((g_start + 10)) ]; then
	echo "goroutines grew from $g_start to $g_end across the recovered run" >&2
	exit 1
fi
stop_daemon
grep -q "smtd: bye" "$work/smtd-a.log"

echo "== phase B: disk errors degrade to memory-only caching, then heal"
# Warm the store fault-free so the chaos run has entries to fail reading.
start_daemon smtd-b.log -store "$work/store-b" -journal "$work/journal-b"
jb="$(ctl submit -stream fadd -window 2000)"
ctl wait "$jb"
ctl result -cell 0 "$jb" >"$work/cell-clean.json"
stop_daemon

cat >"$work/plan-b.json" <<'EOF'
{
  "seed": 1,
  "rules": [
    {"point": "store.read", "action": "error", "error": "chaos: disk read error", "count": 1}
  ]
}
EOF
start_daemon smtd-b.log -store "$work/store-b" -journal "$work/journal-b" \
	-breaker-threshold 1 -breaker-cooldown 2s -fault-plan "$work/plan-b.json"
jb2="$(ctl submit -stream fadd -window 2000)"
ctl wait "$jb2" # the job must succeed despite the sick disk
ctl result -cell 0 "$jb2" >"$work/cell-chaos.json"
diff "$work/cell-clean.json" "$work/cell-chaos.json"
health="$(curl -s "http://$ADDR/healthz")"
if [ "$health" != "degraded" ]; then
	echo "healthz said '$health' right after the disk failure, want 'degraded'" >&2
	exit 1
fi
i=0
until [ "$(curl -s "http://$ADDR/healthz")" = "ok" ]; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "store never recovered: healthz still $(curl -s "http://$ADDR/healthz")" >&2
		curl -s "http://$ADDR/metrics" >&2
		exit 1
	fi
	sleep 0.2
done
trips="$(metric smtd_store_breaker_trips_total)"
io_errors="$(metric smtd_store_io_errors_total)"
if [ "$trips" -lt 1 ] || [ "$io_errors" -lt 1 ]; then
	echo "breaker trips=$trips io_errors=$io_errors, want both >= 1" >&2
	exit 1
fi
curl -sf "http://$ADDR/metrics" >"$work/metrics-b.txt"
for m in smtd_store_corrupt_total smtd_store_evictions_total smtd_store_degraded; do
	grep -q "^$m " "$work/metrics-b.txt" || {
		echo "metric $m missing from /metrics" >&2
		exit 1
	}
done
all_terminal
stop_daemon

echo "== phase C: backpressure 429 is retried, not fatal"
cat >"$work/plan-c.json" <<'EOF'
{
  "seed": 1,
  "rules": [
    {"point": "exec.cell", "action": "latency", "latency_ms": 1500, "count": 2}
  ]
}
EOF
start_daemon smtd-c.log -journal "$work/journal-c" \
	-jobs 1 -queue 1 -workers 1 -fault-plan "$work/plan-c.json"
ja="$(ctl submit -stream fadd -window 2000)"
sleep 0.3 # let the worker pick ja up so jb lands in the queue
jb="$(ctl submit -stream fmul -window 2000)"
jc="$("$bin/smtctl" -addr "$ADDR" -max-retries 10 \
	submit -stream iadd -window 2000 2>"$work/submit-c.err")"
grep -q "retrying" "$work/submit-c.err"
for id in "$ja" "$jb" "$jc"; do
	ctl wait "$id"
done
all_terminal
stop_daemon

echo "== phase D: control run for the checkpoint-resume comparison"
start_daemon smtd-d.log -store "$work/store-d-control"
jd_control="$(ctl submit -kernel mm -mode tlp-fine -size 64)"
ctl wait -q "$jd_control"
ctl result -cell 0 "$jd_control" >"$work/kernel-control.json"
stop_daemon

echo "== phase D: SIGKILL mid-kernel-run, restart resumes from checkpoint"
start_daemon smtd-d.log -store "$work/store-d" -journal "$work/journal-d" \
	-jobs 1 -workers 1 -checkpoint-cycles 5000
jd="$(ctl submit -kernel mm -mode tlp-fine -size 64)"
# Wait for the cell to park at least one checkpoint in the store, then
# kill the daemon hard while the kernel is still mid-run.
i=0
until [ "$(metric smtd_checkpoints_written_total)" -ge 1 ] 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "no checkpoint written before the kill" >&2
		curl -s "http://$ADDR/metrics" >&2
		exit 1
	fi
	sleep 0.05
done
kill9_daemon

start_daemon smtd-d.log -store "$work/store-d" -journal "$work/journal-d" \
	-jobs 1 -workers 1 -checkpoint-cycles 5000
grep -q "recovered" "$work/smtd-d.log"
ctl wait -q "$jd"
restored="$(metric smtd_checkpoints_restored_total)"
saved="$(metric smtd_resume_cycles_saved_total)"
if [ "$restored" -lt 1 ] || [ "$saved" -le 0 ]; then
	echo "restored=$restored cycles_saved=$saved: restart re-ran from cycle zero" >&2
	curl -s "http://$ADDR/metrics" >&2
	exit 1
fi
ctl result -cell 0 "$jd" >"$work/kernel-resumed.json"
diff "$work/kernel-control.json" "$work/kernel-resumed.json"
all_terminal
stop_daemon

echo "chaos smoke OK: panic isolated, watchdog fired, crash recovered (fig1 byte-identical), store degraded and healed, 429 retried, SIGKILL'd kernel resumed from checkpoint byte-identical"
