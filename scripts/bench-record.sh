#!/bin/sh
# Record the gated benchmark set into a committed BENCH_*.json snapshot.
# Run on a quiet machine; the result is the baseline scripts/bench-gate.sh
# (and the CI bench-gate job, in same-runner A/B mode) compares against.
#
#   scripts/bench-record.sh [OUT.json]
#
# The set is the simulator-core performance surface: the cold Figure-1
# macro-benchmark (cells/s plus the reproduced shape metrics) and the
# per-cycle stepping micro-benchmarks (1/2 contexts, armed/disarmed
# observers, fast-forward off/on), all with allocation stats. Benchmarks
# whose results are machine-load-dependent by design (the runner's
# parallel speedup) are deliberately excluded. The set is run in three
# full passes (repeats of one benchmark minutes apart, so a load burst
# cannot hit them all) and the recorder keeps the min time/op per
# benchmark — the closest approximation of uncontended runtime.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_0006.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

for _pass in 1 2 3; do
	go test -run '^$' -bench 'BenchmarkFig1StreamCPI$' -benchtime 3x . | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkSimRate$|BenchmarkStepCompute|BenchmarkStepObserver|BenchmarkStepMemBound' \
		-benchtime 300000x ./internal/smt | tee -a "$tmp"
done

go run ./cmd/benchgate record \
	-out "$out" \
	-commit "$(git rev-parse HEAD 2>/dev/null || echo unknown)" \
	<"$tmp"
echo "recorded $(grep -c '"name"' "$out") benchmarks into $out"
