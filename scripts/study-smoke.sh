#!/bin/sh
# End-to-end smoke test of the study engine, run by the study-smoke CI
# job and `make study-smoke`:
#
#   1. build smtctl and run the committed Figure 1 spec cold; assert the
#      synthesized table is byte-identical to the direct `streams -fig 1`
#      CLI output;
#   2. re-run the same spec over the same store and assert the warm run
#      simulated zero cells with identical bytes;
#   3. warm a store with the direct `kernels -table 1` CLI, then run the
#      committed Table 1 Markdown spec against that store — the study
#      must adopt every cell (zero simulations) and reproduce the CLI's
#      bytes exactly, proving the content keys line up across tools.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
bin="$work/bin"
mkdir -p "$bin"
trap 'rm -rf "$work"' EXIT

echo "== build"
go build -o "$bin/smtctl" ./cmd/smtctl

simulated() {
	# study.json is the persisted summary; pull the simulated count.
	sed -n 's/^ *"simulated": \([0-9-]*\),*$/\1/p' "$1/study.json"
}

echo "== cold fig1 study vs direct CLI"
"$bin/smtctl" study run -f studies/fig1.study.json -dir "$work/out"
go run ./cmd/streams -fig 1 >"$work/fig1-direct.txt"
diff "$work/fig1-direct.txt" "$work/out/fig1/tables/fig1.txt"
cold="$(simulated "$work/out/fig1")"
if [ "$cold" != "30" ]; then
	echo "cold fig1 study simulated $cold cells, want 30" >&2
	exit 1
fi

echo "== warm fig1 re-run"
"$bin/smtctl" study run -f studies/fig1.study.json -dir "$work/out"
diff "$work/fig1-direct.txt" "$work/out/fig1/tables/fig1.txt"
warm="$(simulated "$work/out/fig1")"
if [ "$warm" != "0" ]; then
	echo "warm fig1 study simulated $warm cells, want 0" >&2
	exit 1
fi

echo "== table1 study adopts the kernels CLI's store"
go run ./cmd/kernels -table 1 -store "$work/kstore" >"$work/table1-direct.txt"
"$bin/smtctl" study run -f studies/table1.study.md -dir "$work/out" -store "$work/kstore"
diff "$work/table1-direct.txt" "$work/out/table1/tables/table1.txt"
t1="$(simulated "$work/out/table1")"
if [ "$t1" != "0" ]; then
	echo "table1 study simulated $t1 cells against a warm store, want 0" >&2
	exit 1
fi

echo "== status/report read back"
"$bin/smtctl" study status -dir "$work/out" fig1 | grep -q '"state": "done"'
"$bin/smtctl" study report -dir "$work/out" fig1 | grep -q '^# Study report'

echo "study smoke OK: fig1 and table1 specs byte-identical to the CLIs, warm re-runs simulated 0 cells"
