#!/bin/sh
# End-to-end smoke test of the smtd daemon + smtctl client, run by the
# service-smoke CI job and `make service-smoke`:
#
#   1. build smtd/smtctl, start the daemon on a random port with a disk
#      store, submit a stream pair and the Figure 1 harness, wait;
#   2. assert the daemon's Figure 1 text is byte-identical to the direct
#      `streams -fig 1` CLI output;
#   3. SIGTERM the daemon and verify the graceful drain completed;
#   4. restart on the same store, resubmit, and assert the warm run
#      simulated zero cells (everything served from disk) with identical
#      output.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
bin="$work/bin"
store="$work/store"
mkdir -p "$bin"

cleanup() {
	[ -n "${SMTD_PID:-}" ] && kill "$SMTD_PID" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin/smtd" ./cmd/smtd
go build -o "$bin/smtctl" ./cmd/smtctl

start_daemon() {
	rm -f "$work/addr"
	"$bin/smtd" -addr 127.0.0.1:0 -addr-file "$work/addr" -store "$store" \
		>>"$work/smtd.log" 2>&1 &
	SMTD_PID=$!
	i=0
	while [ ! -s "$work/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "smtd never wrote its addr file" >&2
			cat "$work/smtd.log" >&2
			exit 1
		fi
		kill -0 "$SMTD_PID" 2>/dev/null || {
			echo "smtd exited early" >&2
			cat "$work/smtd.log" >&2
			exit 1
		}
		sleep 0.1
	done
	ADDR="$(cat "$work/addr")"
}

stop_daemon() {
	kill -TERM "$SMTD_PID"
	wait "$SMTD_PID"
	SMTD_PID=
}

metric() {
	curl -sf "http://$ADDR/metrics" | awk -v m="$1" '$1 == m { print $2 }'
}

echo "== cold run"
start_daemon
job="$("$bin/smtctl" -addr "$ADDR" submit -stream fadd,iload -ilp max -window 120000)"
"$bin/smtctl" -addr "$ADDR" wait "$job"
fig="$("$bin/smtctl" -addr "$ADDR" submit -fig 1)"
"$bin/smtctl" -addr "$ADDR" wait "$fig"
"$bin/smtctl" -addr "$ADDR" result -cell 0 -text "$fig" >"$work/fig1-daemon.txt"

echo "== daemon output vs direct CLI"
go run ./cmd/streams -fig 1 >"$work/fig1-direct.txt"
diff "$work/fig1-direct.txt" "$work/fig1-daemon.txt"

echo "== graceful shutdown"
stop_daemon
grep -q "smtd: bye" "$work/smtd.log"
[ "$(ls "$store"/*.cell | wc -l)" -gt 0 ]

echo "== warm restart on the same store"
start_daemon
fig2="$("$bin/smtctl" -addr "$ADDR" submit -fig 1)"
"$bin/smtctl" -addr "$ADDR" wait "$fig2"
"$bin/smtctl" -addr "$ADDR" result -cell 0 -text "$fig2" >"$work/fig1-warm.txt"
diff "$work/fig1-daemon.txt" "$work/fig1-warm.txt"

simulated="$(metric smtd_cells_simulated_total)"
hits="$(metric smtd_store_hits_total)"
if [ "$simulated" != "0" ]; then
	echo "warm run simulated $simulated cells, want 0 (store hits: $hits)" >&2
	exit 1
fi
if [ "$hits" = "0" ]; then
	echo "warm run recorded no store hits" >&2
	exit 1
fi
stop_daemon

echo "service smoke OK: warm run served ${hits} cells from the store, 0 simulated"
