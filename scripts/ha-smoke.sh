#!/bin/sh
# HA coordinator pair smoke test, run by the ha-smoke CI job and
# `make ha-smoke`. Two coordinators share a store directory (lease +
# replicated routing journal) in front of two workers that heartbeat to
# both. Phases:
#
#   A. leadership: the first coordinator leads, the second tails the
#      journal as a standby; smtctl cluster shows the lease;
#   B. failover: SIGKILL the active coordinator while a kernel job is
#      mid-run; the standby steals the lease, re-adopts the job from
#      the journal, and serves a result byte-identical to an
#      uninterrupted control — then fig1 through the promoted leader
#      matches the direct CLI byte for byte;
#   C. rejoin: the killed coordinator restarts as a standby and
#      redirects writes to the leader via X-Cluster-Leader;
#   D. chaos loadgen: open-loop traffic with a mid-run SIGKILL of the
#      (new) active coordinator — zero failed light-tenant jobs, and
#      the report records the measured failover latency.
#
# Set HA_BENCH_OUT=path to keep the bench-shape report (BENCH_0010.json
# was recorded this way). Set HA_KEEP=1 to keep the work directory
# (logs, reports, journals) around for post-mortem debugging.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
bin="$work/bin"
mkdir -p "$bin"

PIDS=""
cleanup() {
	for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
	if [ -n "${HA_KEEP:-}" ]; then
		echo "HA_KEEP set: work dir preserved at $work" >&2
	else
		rm -rf "$work"
	fi
}
trap cleanup EXIT

echo "== build"
go build -o "$bin/smtd" ./cmd/smtd
go build -o "$bin/smtctl" ./cmd/smtctl
go build -o "$bin/loadgen" ./cmd/loadgen

# Each half of the pair needs the other's address before either starts,
# so both ports are picked up front.
cat >"$work/freeport.go" <<'EOF'
package main

import (
	"fmt"
	"net"
)

func main() {
	a, _ := net.Listen("tcp", "127.0.0.1:0")
	b, _ := net.Listen("tcp", "127.0.0.1:0")
	defer a.Close()
	defer b.Close()
	fmt.Println(a.Addr().(*net.TCPAddr).Port, b.Addr().(*net.TCPAddr).Port)
}
EOF
set -- $(go run "$work/freeport.go")
CA="127.0.0.1:$1"
CB="127.0.0.1:$2"

# start_daemon <tag> <addr> [smtd flags...] — writes $work/<tag>.addr
# and $work/<tag>.pid, logs to $work/<tag>.log.
start_daemon() {
	tag="$1"
	addr="$2"
	shift 2
	rm -f "$work/$tag.addr"
	"$bin/smtd" -addr "$addr" -addr-file "$work/$tag.addr" "$@" \
		>>"$work/$tag.log" 2>&1 &
	pid=$!
	PIDS="$PIDS $pid"
	echo "$pid" >"$work/$tag.pid"
	i=0
	while [ ! -s "$work/$tag.addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "$tag never wrote its addr file" >&2
			cat "$work/$tag.log" >&2
			exit 1
		fi
		kill -0 "$pid" 2>/dev/null || {
			echo "$tag exited early" >&2
			cat "$work/$tag.log" >&2
			exit 1
		}
		sleep 0.1
	done
}

addr_of() { cat "$work/$1.addr"; }

stop_daemon() {
	p="$(cat "$work/$1.pid")"
	kill -TERM "$p" 2>/dev/null || true
	wait "$p" 2>/dev/null || true
}

kill9_daemon() {
	p="$(cat "$work/$1.pid")"
	kill -9 "$p"
	wait "$p" 2>/dev/null || true
}

start_coord() { # tag addr peer
	start_daemon "$1" "$2" -coordinator -peer "$3" -store "$work/store" \
		-lease-ttl 500ms -health-interval 100ms -name "$1"
}

start_worker() {
	start_daemon "$1" 127.0.0.1:0 -join "$CA,$CB" -name "$1" \
		-store "$work/store" -checkpoint-cycles 5000 -jobs 2 -workers 2
}

ctl() { "$bin/smtctl" -server "$CA,$CB" "$@"; }

wait_role() { # addr role
	i=0
	until curl -sf "http://$1/v1/cluster" 2>/dev/null | grep -q "\"role\": \"$2\""; do
		i=$((i + 1))
		if [ "$i" -gt 150 ]; then
			echo "$1 never reported role $2" >&2
			curl -s "http://$1/v1/cluster" >&2 || true
			exit 1
		fi
		sleep 0.1
	done
}

wait_live() { # leader-addr n
	i=0
	until curl -sf "http://$1/v1/cluster" | grep -q "\"live\": $2,"; do
		i=$((i + 1))
		if [ "$i" -gt 150 ]; then
			echo "leader never saw $2 live workers" >&2
			curl -s "http://$1/v1/cluster" >&2 || true
			exit 1
		fi
		sleep 0.1
	done
}

wait_job() { # job-id state
	i=0
	until ctl status "$1" 2>/dev/null | grep -q "\"state\": \"$2\""; do
		i=$((i + 1))
		if [ "$i" -gt 600 ]; then
			echo "job $1 never reached $2" >&2
			ctl status "$1" >&2 || true
			exit 1
		fi
		sleep 0.1
	done
}

echo "== phase A: HA pair + 2 workers; first coordinator leads"
start_coord ca "$CA" "$CB"
wait_role "$CA" leader
start_coord cb "$CB" "$CA"
wait_role "$CB" standby
start_worker w1
start_worker w2
wait_live "$CA" 2
ctl cluster >"$work/cluster0.txt"
grep -q "ha: role leader" "$work/cluster0.txt"
grep -q "lease term" "$work/cluster0.txt"

echo "== control results on an isolated daemon (separate store)"
start_daemon ctrl 127.0.0.1:0 -store "$work/store-control"
CTRL="$(addr_of ctrl)"
jc="$("$bin/smtctl" -addr "$CTRL" submit -kernel mm -mode tlp-fine -size 64)"
"$bin/smtctl" -addr "$CTRL" wait -q "$jc"
"$bin/smtctl" -addr "$CTRL" result -cell 0 "$jc" >"$work/kernel-control.json"
go run ./cmd/streams -fig 1 >"$work/fig1-direct.txt"
stop_daemon ctrl

echo "== phase B: SIGKILL the active coordinator mid-kernel"
jx="$(ctl submit -kernel mm -mode tlp-fine -size 64)"
wait_job "$jx" running
sleep 0.3
kill9_daemon ca
wait_job "$jx" done
ctl result -cell 0 "$jx" >"$work/kernel-failover.json"
diff "$work/kernel-control.json" "$work/kernel-failover.json"
wait_role "$CB" leader
curl -sf "http://$CB/v1/cluster" >"$work/topo-after.json"
grep -q '"promotions": 1' "$work/topo-after.json"
grep -q '"jobs_adopted"' "$work/topo-after.json"
grep -q '"failover_latency_seconds"' "$work/topo-after.json"

echo "== phase B: fig1 through the promoted leader == direct CLI, byte for byte"
jf="$(ctl submit -fig 1)"
wait_job "$jf" done
ctl result -cell 0 -text "$jf" >"$work/fig1-ha.txt"
diff "$work/fig1-direct.txt" "$work/fig1-ha.txt"

echo "== phase C: the killed coordinator rejoins as a redirecting standby"
start_coord ca "$CA" "$CB"
wait_role "$CA" standby
curl -s -o /dev/null -D "$work/standby-headers.txt" \
	-X POST -H 'Content-Type: application/json' \
	-d '{"cells":[{"type":"stream","streams":[{"kind":"fadd"}],"window":12345}]}' \
	"http://$CA/v1/jobs" || true
grep -qi "X-Cluster-Leader: $CB" "$work/standby-headers.txt"

echo "== phase D: chaos loadgen kills the active coordinator mid-run"
cat >"$work/chaos.json" <<EOF
{
  "seed": 99,
  "duration": "6s",
  "settle": "60s",
  "tenants": [
    {"name": "light", "rate_hz": 4, "cells_per_job": 2, "priority": 5,
     "window_base": 600000}
  ],
  "phases": [
    {"at": "2s", "kind": "kill", "pidfile": "$work/cb.pid"}
  ]
}
EOF
"$bin/loadgen" -scenario "$work/chaos.json" -addr "$CB,$CA" \
	-poll 20ms -out "$work/ha-report.json" -bench-out "$work/BENCH_ha.json" \
	-assert no-failed:light \
	-assert done-min:light:15
grep -q '"HAFailover"' "$work/BENCH_ha.json" || {
	echo "bench output lacks the HAFailover entry (no failover measured?)" >&2
	cat "$work/BENCH_ha.json" >&2
	exit 1
}
failover="$(grep '"failover_latency_s"' "$work/BENCH_ha.json" | head -1 | tr -dc '0-9.')"
if [ -n "${HA_BENCH_OUT:-}" ]; then
	cp "$work/BENCH_ha.json" "$HA_BENCH_OUT"
fi

wait_role "$CA" leader
stop_daemon w1
stop_daemon w2
stop_daemon ca
grep -q "smtd: bye" "$work/ca.log"

echo "ha smoke OK: failover served byte-identical kernel + fig1 results, standby redirects, chaos run had zero failed light jobs, failover latency ${failover}s"
