#!/bin/sh
# Benchmark-regression gate: re-run the gated benchmark set and fail if
# time/op regresses more than the threshold or allocs/op rises at all.
# The authoritative comparator is the in-repo cmd/benchgate (stdlib
# only); benchstat, when installed, adds a statistical diff as a
# best-effort artifact but never decides the verdict.
#
#   scripts/bench-gate.sh                  gate against committed BENCH_0006.json
#   scripts/bench-gate.sh --against REF    same-machine A/B: record REF's
#                                          baseline in a worktree first
#                                          (what CI does, so runner speed
#                                          differences cannot gate)
#   scripts/bench-gate.sh --selftest       prove the gate goes red on an
#                                          injected +10% slowdown
#
# Environment: BENCH_BASELINE (default BENCH_0006.json),
# BENCH_THRESHOLD (default 0.10), BENCH_DIFF_OUT (artifact path for the
# verdict table, default bench-diff.txt).
set -eu

cd "$(dirname "$0")/.."
baseline="${BENCH_BASELINE:-BENCH_0006.json}"
threshold="${BENCH_THRESHOLD:-0.10}"
diff_out="${BENCH_DIFF_OUT:-bench-diff.txt}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Three full passes over the set, not -count 3: repeats of one
# benchmark are then minutes apart, so a steal-time burst on a shared
# box cannot slow every repeat, and the comparator's min-of-runs
# reduction recovers the quiet value.
run_benches() (
	cd "$1"
	for _pass in 1 2 3; do
		go test -run '^$' -bench 'BenchmarkFig1StreamCPI$' -benchtime 3x .
		go test -run '^$' -bench 'BenchmarkSimRate$|BenchmarkStepCompute|BenchmarkStepObserver|BenchmarkStepMemBound' \
			-benchtime 300000x ./internal/smt
	done
)

selftest() {
	# Synthesize a fresh run 11% slower than a recorded baseline and
	# assert the gate exits non-zero; then assert the unmodified run
	# passes. Complements the comparator's Go unit tests end to end.
	cat >"$tmp/base.txt" <<-'EOF'
		BenchmarkSelfTest 	 100	 1000000 ns/op	       0 B/op	       0 allocs/op
	EOF
	cat >"$tmp/slow.txt" <<-'EOF'
		BenchmarkSelfTest 	 100	 1110000 ns/op	       0 B/op	       0 allocs/op
	EOF
	go run ./cmd/benchgate record -out "$tmp/base.json" <"$tmp/base.txt"
	if go run ./cmd/benchgate gate -baseline "$tmp/base.json" -threshold "$threshold" <"$tmp/slow.txt"; then
		echo "bench-gate selftest FAILED: +11% slowdown passed the gate" >&2
		exit 1
	fi
	go run ./cmd/benchgate gate -baseline "$tmp/base.json" -threshold "$threshold" <"$tmp/base.txt" >/dev/null
	echo "bench-gate selftest ok: injected +11% slowdown goes red, clean run stays green"
}

case "${1:-}" in
--selftest)
	selftest
	exit 0
	;;
--against)
	ref="${2:?usage: bench-gate.sh --against REF}"
	echo "recording same-machine baseline at $ref ..."
	git worktree add --detach "$tmp/base-tree" "$ref" >/dev/null
	trap 'git worktree remove --force "$tmp/base-tree" >/dev/null 2>&1 || true; rm -rf "$tmp"' EXIT
	run_benches "$tmp/base-tree" | tee "$tmp/base-bench.txt"
	go run ./cmd/benchgate record -out "$tmp/baseline.json" \
		-commit "$(git rev-parse "$ref")" <"$tmp/base-bench.txt"
	baseline="$tmp/baseline.json"
	;;
"") ;;
*)
	echo "usage: bench-gate.sh [--against REF | --selftest]" >&2
	exit 2
	;;
esac

[ -f "$baseline" ] || { echo "bench-gate: baseline $baseline not found (run scripts/bench-record.sh)" >&2; exit 2; }

echo "running gated benchmark set ..."
run_benches . | tee "$tmp/fresh.txt"

# Best-effort statistical diff for the artifact; never authoritative.
if [ -f "$tmp/base-bench.txt" ] && command -v benchstat >/dev/null 2>&1; then
	benchstat "$tmp/base-bench.txt" "$tmp/fresh.txt" >"$diff_out.benchstat" 2>&1 || true
fi

status=0
go run ./cmd/benchgate gate -baseline "$baseline" -threshold "$threshold" \
	<"$tmp/fresh.txt" >"$diff_out" || status=$?
cat "$diff_out"
exit "$status"
