# Local mirror of .github/workflows/ci.yml — `make ci` runs the exact
# gate a PR must pass; the finer targets match the individual CI steps.

GO ?= go

.PHONY: ci build fmt vet test race bench-smoke

ci: build fmt vet test race bench-smoke

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 30m ./...

race:
	$(GO) test -race -timeout 50m ./...

# One end-to-end regeneration of every figure/table, plus the runner's
# synthetic speedup benchmark (CI uploads the combined log as the
# bench-smoke artifact).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -timeout 40m . | tee bench-smoke.txt
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/runner | tee -a bench-smoke.txt
