# Local mirror of .github/workflows/ci.yml — `make ci` runs the exact
# gate a PR must pass; the finer targets match the individual CI steps.

GO ?= go

.PHONY: ci build fmt vet test race fuzz-smoke bench-smoke bench-gate bench-record service-smoke chaos-smoke cluster-smoke ha-smoke study-smoke load-smoke obs-artifacts

ci: build fmt vet test race fuzz-smoke bench-smoke bench-gate service-smoke chaos-smoke cluster-smoke ha-smoke study-smoke load-smoke obs-artifacts

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on -timeout 30m ./...

race:
	$(GO) test -race -timeout 50m ./...

# Short coverage-guided runs of every fuzz target (the committed seed
# corpora replay in `make test`; this hunts for new inputs).
fuzz-smoke:
	$(GO) test ./internal/uasm -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/uasm -fuzz FuzzDisasmRoundTrip -fuzztime 10s
	$(GO) test ./internal/uasm -fuzz FuzzCount -fuzztime 10s
	$(GO) test ./internal/isa -fuzz FuzzInstrValidate -fuzztime 10s
	$(GO) test ./internal/isa -fuzz FuzzInstrConstruct -fuzztime 10s
	$(GO) test ./internal/checkpoint -fuzz FuzzDecode -fuzztime 10s
	$(GO) test ./internal/study/spec -fuzz FuzzParseSpec -fuzztime 10s
	$(GO) test ./internal/loadgen -fuzz FuzzParseScenario -fuzztime 10s

# One end-to-end regeneration of every figure/table, plus the runner's
# synthetic speedup benchmark (CI uploads the combined log as the
# bench-smoke artifact).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . | tee bench-smoke.txt
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/runner | tee -a bench-smoke.txt

# End-to-end daemon smoke: smtd + smtctl against a disk store, including
# the byte-identical-to-CLI check and the warm-restart zero-simulation
# check (CI runs the same script).
service-smoke:
	./scripts/service-smoke.sh

# Failure-hardening smoke: deterministic fault plans drive cell panics,
# wedged cells, disk errors, a SIGKILL mid-job and queue backpressure
# through smtd; every job must end terminal and the recovered Figure 1
# text must be byte-identical to the fault-free run (CI runs the same
# script).
chaos-smoke:
	./scripts/chaos-smoke.sh

# Cluster smoke: a coordinator plus three -join workers on a shared
# store. Asserts coordinator/CLI byte parity, a warm-restarted fleet
# simulating zero cells, work stealing off an overloaded worker, and a
# SIGKILL'd worker's kernel cell resuming from the shared checkpoint on
# a survivor with a byte-identical result (CI runs the same script).
cluster-smoke:
	./scripts/cluster-smoke.sh

# HA smoke: an active/standby coordinator pair on a shared store.
# Asserts lease-based promotion after SIGKILLing the active coordinator
# mid-job (byte-identical results through the standby), rejoin as a
# redirecting standby, and a chaos loadgen run with zero failed
# light-tenant jobs plus a measured failover latency (CI runs the same
# script; HA_BENCH_OUT=path keeps the bench-shape report).
ha-smoke:
	./scripts/ha-smoke.sh

# Multi-tenant SLO smoke: loadgen drives a light tenant and a
# 10x-heavier neighbour at a quota-configured smtd (plus a worker
# SIGKILL against a cluster) and asserts the isolation SLOs: light
# goodput >= 80% of solo, light p99 <= 2x solo, heavy shed with named
# quota causes, and zero light-tenant failures under chaos (CI runs
# the same script).
load-smoke:
	./scripts/load-smoke.sh

# Study-engine smoke: the committed Figure 1 / Table 1 specs must be
# byte-identical to the direct CLIs and warm re-runs must simulate
# zero cells (the dedupe/adoption contract across tools).
study-smoke:
	./scripts/study-smoke.sh

# Sample observability bundle: a Perfetto-loadable pipeline trace, an
# occupancy CSV and a metrics snapshot (CI uploads obs-sample/).
obs-artifacts:
	mkdir -p obs-sample
	$(GO) run ./cmd/smtsim -kernel mm -mode tlp-fine -size 32 \
		-trace obs-sample/mm-tlp-fine.trace.json \
		-occupancy obs-sample/mm-tlp-fine.occupancy.csv \
		-metrics obs-sample/mm-tlp-fine.metrics.json > obs-sample/mm-tlp-fine.stdout.txt
	$(GO) run ./cmd/smtsim -stream fadd,iload -cycles 50000 \
		-trace obs-sample/fadd-iload.trace.json \
		-occupancy obs-sample/fadd-iload.occupancy.csv \
		-metrics obs-sample/fadd-iload.metrics.json > obs-sample/fadd-iload.stdout.txt

# Benchmark-regression gate (mirrors the bench-gate CI job): the gated
# benchmark set must hold time/op within 10% of the committed
# BENCH_0006.json baseline and allocs/op at zero. Use
# `scripts/bench-gate.sh --against REF` for a same-machine A/B when the
# local box differs from the one that recorded the baseline.
bench-gate:
	./scripts/bench-gate.sh --selftest
	./scripts/bench-gate.sh

# Re-record the committed benchmark baseline (run on a quiet machine).
bench-record:
	./scripts/bench-record.sh
