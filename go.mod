module smtexplore

go 1.24
