package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden tests pin the exact text output of the ablation CLI: any
// change to the timing model, the harness or the formatter — intended
// or not — shows up as a diff. Regenerate with:
//
//	go test ./cmd/ablate -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

func TestGoldenSelective(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-study", "selective"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "selective", buf.Bytes())
}

func TestGoldenSync(t *testing.T) {
	if testing.Short() {
		t.Skip("the sync study runs full-size MM cells; skipped in -short")
	}
	var buf bytes.Buffer
	if err := run([]string{"-study", "sync"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sync", buf.Bytes())
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-study", "bogus"},
		{"-workers", "0"},
		{"-no-such-flag"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); !errors.Is(err, errUsage) {
			t.Errorf("run(%q) = %v, want errUsage", args, err)
		}
	}
}
