// Command ablate runs the design-choice ablation studies of the
// reproduction: the §3.1 synchronisation-primitive comparison (raw spin
// vs pause-augmented spin vs halt), the §3.2 precomputation-span sweep,
// and the §5.3 static-vs-shared resource-partitioning contrast.
//
// Usage:
//
//	ablate -study sync|span|partition|all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"smtexplore/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	study := flag.String("study", "all", "study to run: sync, span, partition, selective or all")
	flag.Parse()

	run := func(name string) {
		var rows []experiments.AblationRow
		var title string
		var err error
		switch name {
		case "sync":
			title = "Ablation §3.1 — wait primitive of the MM prefetcher"
			rows, err = experiments.AblateSync()
		case "span":
			title = "Ablation §3.2 — precomputation span of the MM prefetcher"
			rows, err = experiments.AblateSpan()
		case "partition":
			title = "Ablation §5.3 — static partitioning vs fully shared buffers"
			rows, err = experiments.AblatePartition()
		case "selective":
			r, serr := experiments.SelectiveHaltLU(64)
			if serr != nil {
				log.Fatal(serr)
			}
			fmt.Print(experiments.FormatSelectiveHalt(r))
			fmt.Println()
			return
		default:
			fmt.Fprintf(os.Stderr, "unknown study %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatAblation(title, rows))
		fmt.Println()
	}

	if *study == "all" {
		for _, s := range []string{"sync", "span", "partition", "selective"} {
			run(s)
		}
		return
	}
	run(*study)
}
