// Command ablate runs the design-choice ablation studies of the
// reproduction: the §3.1 synchronisation-primitive comparison (raw spin
// vs pause-augmented spin vs halt), the §3.2 precomputation-span sweep,
// and the §5.3 static-vs-shared resource-partitioning contrast.
//
// Usage:
//
//	ablate -study sync|span|partition|selective|all
//	ablate -workers 4      # bound the concurrent simulation cells
//	ablate -store cells/   # reuse the disk-backed result store
//
// Simulation cells fan out over -workers (default: all cores); one
// result cache spans the invocation, so configurations repeated across
// studies (e.g. the default MM prefetch cell) simulate once. Output is
// byte-identical to -workers 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
	"smtexplore/internal/store"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ablate", flag.ContinueOnError)
	study := fs.String("study", "all", "study to run: sync, span, partition, selective or all")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells (must be >= 1)")
	storeDir := fs.String("store", "", "disk-backed result store directory, shared with smtd and the other CLIs")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the flag package already reported the problem
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "ablate: invalid -workers %d (must be >= 1)\n", *workers)
		fs.Usage()
		return errUsage
	}
	cache := runner.NewCache()
	if *storeDir != "" {
		st, err := store.Open(*storeDir, 0)
		if err != nil {
			return err
		}
		cache.WithTier(st)
	}

	ctx := context.Background()
	opt := experiments.Options{Workers: *workers, Cache: cache}
	runStudy := func(name string) error {
		var rows []experiments.AblationRow
		var title string
		var err error
		switch name {
		case "sync":
			title = "Ablation §3.1 — wait primitive of the MM prefetcher"
			rows, err = experiments.AblateSync(ctx, opt)
		case "span":
			title = "Ablation §3.2 — precomputation span of the MM prefetcher"
			rows, err = experiments.AblateSpan(ctx, opt)
		case "partition":
			title = "Ablation §5.3 — static partitioning vs fully shared buffers"
			rows, err = experiments.AblatePartition(ctx, opt)
		case "selective":
			r, serr := experiments.SelectiveHaltLU(ctx, opt, 64)
			if serr != nil {
				return serr
			}
			fmt.Fprint(out, experiments.FormatSelectiveHalt(r))
			fmt.Fprintln(out)
			return nil
		default:
			fmt.Fprintf(os.Stderr, "unknown study %q\n", name)
			fs.Usage()
			return errUsage
		}
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatAblation(title, rows))
		fmt.Fprintln(out)
		return nil
	}

	if *study == "all" {
		for _, s := range []string{"sync", "span", "partition", "selective"} {
			if err := runStudy(s); err != nil {
				return err
			}
		}
		return nil
	}
	return runStudy(*study)
}
