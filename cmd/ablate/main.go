// Command ablate runs the design-choice ablation studies of the
// reproduction: the §3.1 synchronisation-primitive comparison (raw spin
// vs pause-augmented spin vs halt), the §3.2 precomputation-span sweep,
// and the §5.3 static-vs-shared resource-partitioning contrast.
//
// Usage:
//
//	ablate -study sync|span|partition|selective|all
//	ablate -workers 4      # bound the concurrent simulation cells
//
// Simulation cells fan out over -workers (default: all cores); one
// result cache spans the invocation, so configurations repeated across
// studies (e.g. the default MM prefetch cell) simulate once. Output is
// byte-identical to -workers 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	study := flag.String("study", "all", "study to run: sync, span, partition, selective or all")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells (must be >= 1)")
	flag.Parse()
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "ablate: invalid -workers %d (must be >= 1)\n", *workers)
		flag.Usage()
		os.Exit(2)
	}

	ctx := context.Background()
	opt := experiments.Options{Workers: *workers, Cache: runner.NewCache()}
	run := func(name string) {
		var rows []experiments.AblationRow
		var title string
		var err error
		switch name {
		case "sync":
			title = "Ablation §3.1 — wait primitive of the MM prefetcher"
			rows, err = experiments.AblateSync(ctx, opt)
		case "span":
			title = "Ablation §3.2 — precomputation span of the MM prefetcher"
			rows, err = experiments.AblateSpan(ctx, opt)
		case "partition":
			title = "Ablation §5.3 — static partitioning vs fully shared buffers"
			rows, err = experiments.AblatePartition(ctx, opt)
		case "selective":
			r, serr := experiments.SelectiveHaltLU(ctx, opt, 64)
			if serr != nil {
				log.Fatal(serr)
			}
			fmt.Print(experiments.FormatSelectiveHalt(r))
			fmt.Println()
			return
		default:
			fmt.Fprintf(os.Stderr, "unknown study %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatAblation(title, rows))
		fmt.Println()
	}

	if *study == "all" {
		for _, s := range []string{"sync", "span", "partition", "selective"} {
			run(s)
		}
		return
	}
	run(*study)
}
