// Command memprobe characterises the simulated memory hierarchy with
// lmbench-style microbenchmarks: a dependent pointer-chase latency sweep
// across region sizes (exposing the L1/L2/DRAM plateaus) and a streaming
// bandwidth sweep with one and two hardware contexts (exposing the shared
// L2 port and MSHR limits the paper's dual-thread kernels contend on).
//
// Usage:
//
//	memprobe                 # both sweeps on the stream machine
//	memprobe -machine kernel # the scaled kernel machine (32 KB L2)
//	memprobe -lat | -bw      # one sweep only
package main

import (
	"flag"
	"fmt"
	"log"

	"smtexplore/internal/core"
	"smtexplore/internal/memprobe"
	"smtexplore/internal/smt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("memprobe: ")
	machine := flag.String("machine", "stream", "machine config: stream (512 KB L2) or kernel (32 KB L2)")
	latOnly := flag.Bool("lat", false, "latency sweep only")
	bwOnly := flag.Bool("bw", false, "bandwidth sweep only")
	hops := flag.Int("hops", 4000, "chase hops per latency point")
	flag.Parse()

	var mcfg smt.Config
	switch *machine {
	case "stream":
		mcfg = core.StreamMachine()
	case "kernel":
		mcfg = core.KernelMachine()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	l2 := mcfg.Mem.L2.Size
	sizes := []int{1 << 10, 4 << 10, 16 << 10, l2 / 2, l2, 4 * l2, 16 * l2}

	if !*bwOnly {
		fmt.Printf("dependent pointer-chase latency (%s machine, L1 %dKB, L2 %dKB):\n",
			*machine, mcfg.Mem.L1.Size>>10, l2>>10)
		points, err := memprobe.LatencySweep(mcfg, sizes, *hops)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(memprobe.FormatLatency(points))
		fmt.Println()
	}
	if !*latOnly {
		fmt.Println("streaming bandwidth (independent loads):")
		points, err := memprobe.BandwidthSweep(mcfg, []int{4 << 10, l2, 8 * l2}, 40_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(memprobe.FormatBandwidth(points))
	}
}
