// Command memprobe characterises the simulated memory hierarchy with
// lmbench-style microbenchmarks: a dependent pointer-chase latency sweep
// across region sizes (exposing the L1/L2/DRAM plateaus) and a streaming
// bandwidth sweep with one and two hardware contexts (exposing the shared
// L2 port and MSHR limits the paper's dual-thread kernels contend on).
//
// Usage:
//
//	memprobe                 # both sweeps on the stream machine
//	memprobe -machine kernel # the scaled kernel machine (32 KB L2)
//	memprobe -lat | -bw      # one sweep only
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"smtexplore/internal/core"
	"smtexplore/internal/memprobe"
	"smtexplore/internal/smt"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("memprobe: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("memprobe", flag.ContinueOnError)
	machine := fs.String("machine", "stream", "machine config: stream (512 KB L2) or kernel (32 KB L2)")
	latOnly := fs.Bool("lat", false, "latency sweep only")
	bwOnly := fs.Bool("bw", false, "bandwidth sweep only")
	hops := fs.Int("hops", 4000, "chase hops per latency point")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the flag package already reported the problem
	}

	var mcfg smt.Config
	switch *machine {
	case "stream":
		mcfg = core.StreamMachine()
	case "kernel":
		mcfg = core.KernelMachine()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		fs.Usage()
		return errUsage
	}

	l2 := mcfg.Mem.L2.Size
	sizes := []int{1 << 10, 4 << 10, 16 << 10, l2 / 2, l2, 4 * l2, 16 * l2}

	if !*bwOnly {
		fmt.Fprintf(out, "dependent pointer-chase latency (%s machine, L1 %dKB, L2 %dKB):\n",
			*machine, mcfg.Mem.L1.Size>>10, l2>>10)
		points, err := memprobe.LatencySweep(mcfg, sizes, *hops)
		if err != nil {
			return err
		}
		fmt.Fprint(out, memprobe.FormatLatency(points))
		fmt.Fprintln(out)
	}
	if !*latOnly {
		fmt.Fprintln(out, "streaming bandwidth (independent loads):")
		points, err := memprobe.BandwidthSweep(mcfg, []int{4 << 10, l2, 8 * l2}, 40_000)
		if err != nil {
			return err
		}
		fmt.Fprint(out, memprobe.FormatBandwidth(points))
	}
	return nil
}
