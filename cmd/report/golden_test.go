package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden test pins the exact verdict table of the quick collection:
// any change to the timing model, the evaluation thresholds or the
// formatter — intended or not — shows up as a diff. Regenerate with:
//
//	go test ./cmd/report -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

func TestGoldenQuickReport(t *testing.T) {
	if testing.Short() {
		t.Skip("the quick collection still simulates CG and BT; skipped in -short")
	}
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-sizes", "16,32"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "quick-report", buf.Bytes())
}
