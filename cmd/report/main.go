// Command report regenerates the complete evaluation and scores the
// reproduction against the paper's quantitative claims, printing a
// verdict table (the generated counterpart of EXPERIMENTS.md's summary).
//
// Usage:
//
//	report            # full collection (several minutes of simulation)
//	report -quick     # smaller kernel instances, streams/ablations skipped
//	report -verbose   # additionally print every figure and table
//	report -workers 4 # bound the concurrent simulation cells
//
// Simulation cells fan out over -workers (default: all cores); one
// result cache spans the whole collection. Output is byte-identical to
// -workers 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"smtexplore/internal/experiments"
	"smtexplore/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	quick := flag.Bool("quick", false, "reduced collection: small kernels, no streams/ablations")
	verbose := flag.Bool("verbose", false, "also print the collected figures and tables")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells (must be >= 1)")
	flag.Parse()
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "report: invalid -workers %d (must be >= 1)\n", *workers)
		flag.Usage()
		os.Exit(2)
	}

	opt := report.Options{Workers: *workers}
	if *quick {
		opt = report.Options{
			MMSizes:       []int{32, 64},
			LUSizes:       []int{32, 64},
			SkipStreams:   true,
			SkipAblations: true,
			Workers:       *workers,
		}
	}

	d, err := report.Collect(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}

	if *verbose {
		if d.Fig1 != nil {
			fmt.Print(experiments.FormatFig1(d.Fig1))
			fmt.Println()
		}
		fmt.Print(experiments.FormatKernelFigure("Figure 3 — Matrix Multiplication", d.MM))
		fmt.Println()
		fmt.Print(experiments.FormatKernelFigure("Figure 4 — LU decomposition", d.LU))
		fmt.Println()
		fmt.Print(experiments.FormatKernelFigure("Figure 5 — NAS CG", d.CG))
		fmt.Println()
		fmt.Print(experiments.FormatKernelFigure("Figure 5 — NAS BT", d.BT))
		fmt.Println()
		fmt.Print(experiments.FormatTable1(d.Table1))
		fmt.Println()
	}

	fmt.Print(report.Format(report.Evaluate(d)))
}
