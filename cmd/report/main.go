// Command report regenerates the complete evaluation and scores the
// reproduction against the paper's quantitative claims, printing a
// verdict table (the generated counterpart of EXPERIMENTS.md's summary).
//
// Usage:
//
//	report            # full collection (several minutes of simulation)
//	report -quick     # smaller kernel instances, streams/ablations skipped
//	report -verbose   # additionally print every figure and table
package main

import (
	"flag"
	"fmt"
	"log"

	"smtexplore/internal/experiments"
	"smtexplore/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	quick := flag.Bool("quick", false, "reduced collection: small kernels, no streams/ablations")
	verbose := flag.Bool("verbose", false, "also print the collected figures and tables")
	flag.Parse()

	opt := report.Options{}
	if *quick {
		opt = report.Options{
			MMSizes:       []int{32, 64},
			LUSizes:       []int{32, 64},
			SkipStreams:   true,
			SkipAblations: true,
		}
	}

	d, err := report.Collect(opt)
	if err != nil {
		log.Fatal(err)
	}

	if *verbose {
		if d.Fig1 != nil {
			fmt.Print(experiments.FormatFig1(d.Fig1))
			fmt.Println()
		}
		fmt.Print(experiments.FormatKernelFigure("Figure 3 — Matrix Multiplication", d.MM))
		fmt.Println()
		fmt.Print(experiments.FormatKernelFigure("Figure 4 — LU decomposition", d.LU))
		fmt.Println()
		fmt.Print(experiments.FormatKernelFigure("Figure 5 — NAS CG", d.CG))
		fmt.Println()
		fmt.Print(experiments.FormatKernelFigure("Figure 5 — NAS BT", d.BT))
		fmt.Println()
		fmt.Print(experiments.FormatTable1(d.Table1))
		fmt.Println()
	}

	fmt.Print(report.Format(report.Evaluate(d)))
}
