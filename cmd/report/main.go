// Command report regenerates the complete evaluation and scores the
// reproduction against the paper's quantitative claims, printing a
// verdict table (the generated counterpart of EXPERIMENTS.md's summary).
//
// Usage:
//
//	report            # full collection (several minutes of simulation)
//	report -quick     # smaller kernel instances, streams/ablations skipped
//	report -sizes 16,32  # override the quick/full MM and LU problem sizes
//	report -verbose   # additionally print every figure and table
//	report -workers 4 # bound the concurrent simulation cells
//
// Simulation cells fan out over -workers (default: all cores); one
// result cache spans the whole collection. Output is byte-identical to
// -workers 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"smtexplore/internal/experiments"
	"smtexplore/internal/report"
	"smtexplore/internal/runner"
	"smtexplore/internal/store"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced collection: small kernels, no streams/ablations")
	sizes := fs.String("sizes", "", "comma-separated MM/LU problem sizes (overrides the -quick defaults)")
	verbose := fs.Bool("verbose", false, "also print the collected figures and tables")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells (must be >= 1)")
	storeDir := fs.String("store", "", "disk-backed result store directory, shared with smtd and the other CLIs")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the flag package already reported the problem
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "report: invalid -workers %d (must be >= 1)\n", *workers)
		fs.Usage()
		return errUsage
	}

	cache := runner.NewCache()
	if *storeDir != "" {
		st, err := store.Open(*storeDir, 0)
		if err != nil {
			return err
		}
		cache.WithTier(st)
	}

	opt := report.Options{Workers: *workers, Cache: cache}
	if *quick {
		opt = report.Options{
			MMSizes:       []int{32, 64},
			LUSizes:       []int{32, 64},
			SkipStreams:   true,
			SkipAblations: true,
			Workers:       *workers,
			Cache:         cache,
		}
	}
	if ns, err := parseSizes(*sizes); err != nil {
		return err
	} else if ns != nil {
		opt.MMSizes, opt.LUSizes = ns, ns
	}

	d, err := report.Collect(context.Background(), opt)
	if err != nil {
		return err
	}

	if *verbose {
		if d.Fig1 != nil {
			fmt.Fprint(out, experiments.FormatFig1(d.Fig1))
			fmt.Fprintln(out)
		}
		fmt.Fprint(out, experiments.FormatKernelFigure("Figure 3 — Matrix Multiplication", d.MM))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatKernelFigure("Figure 4 — LU decomposition", d.LU))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatKernelFigure("Figure 5 — NAS CG", d.CG))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatKernelFigure("Figure 5 — NAS BT", d.BT))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatTable1(d.Table1))
		fmt.Fprintln(out)
	}

	fmt.Fprint(out, report.Format(report.Evaluate(d)))
	return nil
}
