package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smtexplore/internal/runner"
	"smtexplore/internal/service"
	"smtexplore/internal/store"
)

const miniStudy = `{"name":"mini","sweeps":[{"name":"mini","kind":"stream",
	"streams":["fadd","iload"],"ilp":["min"],"window":20000}]}`

func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "mini.study.json")
	if err := os.WriteFile(path, []byte(miniStudy), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStudyRunLocalAndReadBack(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	out := filepath.Join(dir, "out")

	got, err := ctl(t, "unused:0", "study", "run", "-f", spec, "-dir", out)
	if err != nil {
		t.Fatalf("study run: %v", err)
	}
	for _, want := range []string{"study mini: done", "4 grid points -> 4 unique", "simulated: 4"} {
		if !strings.Contains(got, want) {
			t.Errorf("run output %q lacks %q", got, want)
		}
	}

	// Warm re-run over the implicit <out>/mini/store: nothing simulated.
	got, err = ctl(t, "unused:0", "study", "run", "-f", spec, "-dir", out)
	if err != nil {
		t.Fatalf("warm study run: %v", err)
	}
	if !strings.Contains(got, "simulated: 0") || !strings.Contains(got, "4 warm") {
		t.Errorf("warm run output %q", got)
	}

	got, err = ctl(t, "unused:0", "study", "status", "-dir", out, "mini")
	if err != nil {
		t.Fatalf("study status: %v", err)
	}
	if !strings.Contains(got, `"state": "done"`) || !strings.Contains(got, `"simulated": 0`) {
		t.Errorf("status output %q", got)
	}

	got, err = ctl(t, "unused:0", "study", "report", "-dir", out, "mini")
	if err != nil {
		t.Fatalf("study report: %v", err)
	}
	if !strings.HasPrefix(got, "# Study report — mini") {
		t.Errorf("report output starts %q", got[:min(len(got), 40)])
	}

	// Table artifact exists where the summary points.
	if _, err := os.Stat(filepath.Join(out, "mini", "tables", "mini.txt")); err != nil {
		t.Errorf("persisted table: %v", err)
	}
}

func TestStudyRunDaemonBackend(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	addr := startDaemon(t, service.Config{Workers: 2, Cache: runner.NewCache().WithTier(st), Store: st})
	dir := t.TempDir()
	spec := writeSpec(t, dir)

	got, err := ctl(t, addr, "study", "run", "-f", spec, "-dir", filepath.Join(dir, "out"), "-via", "daemon")
	if err != nil {
		t.Fatalf("study run -via daemon: %v", err)
	}
	if !strings.Contains(got, "backend daemon") || !strings.Contains(got, "simulated: 4") {
		t.Errorf("daemon run output %q", got)
	}
}

func TestStudyUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"study"},
		{"study", "frobnicate"},
		{"study", "run"},
		{"study", "run", "-f", "no-such-file.json"},
		{"study", "status"},
		{"study", "report", "-dir", t.TempDir(), "nope"},
	} {
		if _, err := ctl(t, "unused:0", args...); err == nil {
			t.Errorf("%v: expected an error", args)
		}
	}
}
