package main

import (
	"context"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"time"
)

// retrier retries transient HTTP failures with capped exponential
// backoff and full jitter, honouring Retry-After when the server names
// a delay. Transport errors, 429 and 502/503/504 are transient (the
// daemon uses 429 for queue backpressure and 503 for a journal that
// could not persist the job — both explicitly safe to retry); anything
// else is the caller's problem on the first try.
type retrier struct {
	max  int           // retries after the first attempt
	base time.Duration // first backoff step
	cap  time.Duration // backoff ceiling
	// sleep waits between attempts; the default aborts the wait the
	// moment ctx is cancelled, so ^C interrupts a long mandated
	// Retry-After instead of serving it out. Tests stub it.
	sleep func(ctx context.Context, d time.Duration) error
	// rng draws the backoff jitter. Each retrier owns its source (a
	// *rand.Rand is not safe for concurrent use) seeded per process, so
	// jitter stays independent of anything else drawing from the global
	// source and tests can inject a fixed seed.
	rng *rand.Rand
}

func newRetrier(max int) retrier {
	return retrier{
		max:   max,
		base:  200 * time.Millisecond,
		cap:   5 * time.Second,
		sleep: sleepCtx,
		rng:   rand.New(rand.NewPCG(uint64(os.Getpid()), uint64(time.Now().UnixNano()))),
	}
}

// sleepCtx pauses for d or until ctx is cancelled, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether the outcome is worth retrying and the
// server-mandated delay, if any.
func retryable(resp *http.Response, err error) (bool, time.Duration) {
	if err != nil {
		return true, 0
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, aerr := strconv.Atoi(s); aerr == nil && n >= 0 {
				return true, time.Duration(n) * time.Second
			}
		}
		return true, 0
	}
	return false, 0
}

// do runs attempt until it yields a non-retryable outcome, the budget
// is spent, or ctx is cancelled mid-backoff, logging each retry to
// stderr. The attempt closure must build a fresh request every call
// (bodies are single-use). The caller owns the final response's body;
// intermediate ones are closed here.
func (r retrier) do(ctx context.Context, what string, attempt func() (*http.Response, error)) (*http.Response, error) {
	delay := r.base
	for try := 0; ; try++ {
		resp, err := attempt()
		again, mandated := retryable(resp, err)
		if !again || try >= r.max {
			return resp, err
		}
		wait := delay
		if mandated > 0 {
			wait = mandated
		}
		// Full jitter: a uniform draw from (0, wait] spreads a herd of
		// retrying clients out instead of letting it reconverge.
		wait = time.Duration(1 + r.rng.Int64N(int64(wait)))
		if err != nil {
			log.Printf("%s: %v; retrying in %s (%d/%d)", what, err, wait.Round(time.Millisecond), try+1, r.max)
		} else {
			resp.Body.Close()
			log.Printf("%s: %s; retrying in %s (%d/%d)", what, resp.Status, wait.Round(time.Millisecond), try+1, r.max)
		}
		if serr := r.sleep(ctx, wait); serr != nil {
			// Cancelled mid-backoff: surface the cancellation, not the
			// transient failure the retry would have papered over.
			return nil, serr
		}
		if delay < r.cap {
			delay *= 2
			if delay > r.cap {
				delay = r.cap
			}
		}
	}
}
