package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"smtexplore/internal/cluster"
	"smtexplore/internal/store"
	"smtexplore/internal/study"
	"smtexplore/internal/study/execute"
	"smtexplore/internal/study/spec"
)

// study dispatches the study subcommands. run compiles a declarative
// spec into a deduped cell DAG and executes it; status and report read
// back the state a run persisted, so neither needs a live daemon.
func (c client) study(args []string) error {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: smtctl study run|status|report [args]")
		return errUsage
	}
	switch args[0] {
	case "run":
		return c.studyRun(args[1:])
	case "status":
		return c.studyStatus(args[1:])
	case "report":
		return c.studyReport(args[1:])
	}
	fmt.Fprintf(os.Stderr, "smtctl: unknown study command %q\n", args[0])
	return errUsage
}

// studyRun parses the spec, picks a backend and runs the engine. The
// local backend simulates in-process against an on-disk store (so a
// re-run over the same store is warm); the daemon backend submits one
// job to the -addr smtd or coordinator and inherits its cluster-wide
// cache. Failed cells exit 1 — a partial study is visible in CI, not
// just in the report appendix.
func (c client) studyRun(args []string) error {
	fs := flag.NewFlagSet("smtctl study run", flag.ContinueOnError)
	file := fs.String("f", "", "study spec file, JSON or Markdown (\"-\": stdin)")
	dir := fs.String("dir", "study-out", "state root; the run persists under <dir>/<name>/")
	via := fs.String("via", "local", "backend: local (in-process) or daemon (the -addr smtd/coordinator)")
	storeDir := fs.String("store", "", "local backend result store (default <dir>/<name>/store)")
	workers := fs.Int("workers", 0, "local backend simulation workers (0: one per CPU)")
	printReport := fs.Bool("report", false, "print the full Markdown report instead of the summary")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}
	if *file == "" {
		return usage(fs, "study run needs -f <spec>")
	}
	var data []byte
	var err error
	if *file == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*file)
	}
	if err != nil {
		return err
	}
	s, err := spec.Parse(data)
	if err != nil {
		return err
	}

	var backend execute.Backend
	switch *via {
	case "local":
		sd := *storeDir
		if sd == "" {
			sd = filepath.Join(study.StateDir(*dir, s.Name), "store")
		}
		st, err := store.Open(sd, 0)
		if err != nil {
			return err
		}
		backend = execute.NewLocal(st)
	case "daemon":
		backend = &execute.Remote{Worker: cluster.NewRemote("daemon", strings.TrimPrefix(c.base(), "http://"))}
	default:
		return usage(fs, "unknown backend %q (want local or daemon)", *via)
	}

	res, err := study.Run(c.ctx, s, study.RunConfig{Backend: backend, Dir: *dir, Workers: *workers})
	if err != nil {
		return err
	}
	if *printReport {
		fmt.Fprint(c.out, res.Report)
	} else {
		printSummary(c.out, &res.Summary, *dir)
	}
	if res.Summary.Failed > 0 {
		return fmt.Errorf("%w: study %s: %d cells failed", errJobFailed, res.Summary.Name, res.Summary.Failed)
	}
	return nil
}

// printSummary is the human-facing run recap: what ran, what was warm,
// and where the artifacts landed.
func printSummary(out io.Writer, sum *study.Summary, dir string) {
	fmt.Fprintf(out, "study %s: %s (backend %s)\n", sum.Name, sum.State, sum.Backend)
	fmt.Fprintf(out, "  cells: %d grid points -> %d unique, %d warm, %d cold, %d skipped\n",
		sum.GridPoints, sum.UniqueCells, sum.Warm, sum.ColdAdmitted, sum.Skipped)
	if sum.Simulated >= 0 {
		fmt.Fprintf(out, "  simulated: %d\n", sum.Simulated)
	}
	if sum.Failed > 0 {
		fmt.Fprintf(out, "  failed: %d\n", sum.Failed)
	}
	fmt.Fprintf(out, "  report: %s\n", filepath.Join(study.StateDir(dir, sum.Name), "report.md"))
}

func studyNameArg(fs *flag.FlagSet, what string) (string, error) {
	if fs.NArg() != 1 {
		return "", usage(fs, "study %s needs exactly one study name", what)
	}
	return fs.Arg(0), nil
}

func (c client) studyStatus(args []string) error {
	fs := flag.NewFlagSet("smtctl study status", flag.ContinueOnError)
	dir := fs.String("dir", "study-out", "state root the study ran with")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	name, err := studyNameArg(fs, "status")
	if err != nil {
		return err
	}
	sum, err := study.LoadSummary(*dir, name)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(c.out)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

func (c client) studyReport(args []string) error {
	fs := flag.NewFlagSet("smtctl study report", flag.ContinueOnError)
	dir := fs.String("dir", "study-out", "state root the study ran with")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	name, err := studyNameArg(fs, "report")
	if err != nil {
		return err
	}
	md, err := study.LoadReport(*dir, name)
	if err != nil {
		return err
	}
	_, err = io.WriteString(c.out, md)
	return err
}
