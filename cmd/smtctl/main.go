// Command smtctl is the client for the smtd simulation daemon: it
// submits cell batches, watches progress over the daemon's SSE stream,
// and fetches results — the scriptable path CI uses to smoke-test the
// service end to end.
//
// Usage:
//
//	smtctl [-addr host:port] <command> [args]
//	smtctl -server a,b <command> [args]      # HA pair: rotate on refusal, follow leader redirects
//
//	smtctl submit -fig 1                     # one harness cell; prints the job ID
//	smtctl submit -stream fadd,iload -ilp max -window 120000
//	smtctl submit -kernel mm -mode tlp-fine -size 64
//	smtctl submit -kernel lu -size 64 -deadline 90s -priority 5
//	smtctl submit -f batch.json              # raw batch ("-" reads stdin)
//	smtctl status j0001                      # job status JSON
//	smtctl wait j0001                        # stream events until terminal
//	smtctl result j0001 [-cell 0] [-text]    # results (terminal jobs)
//	smtctl cancel j0001                      # abort
//	smtctl cluster                           # cluster topology (coordinators only)
//	smtctl study run -f fig1.study.json      # compile + execute a declarative study
//	smtctl study status fig1                 # persisted study summary JSON
//	smtctl study report fig1                 # persisted Markdown report
//
// Every command works identically against a single smtd and a cluster
// coordinator — the coordinator serves the same job API — except
// cluster, which only a coordinator answers.
//
// wait exits 0 only when the job completed: a failed job prints the
// failing cell's error and exits 1; a cancelled job prints the
// cancellation and exits 3 — silence is never a masked failure.
// SIGINT/SIGTERM cancel promptly, even mid-backoff during a retry wait.
package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smtexplore/internal/cluster"
	"smtexplore/internal/service"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

// errJobFailed and errJobCancelled mark terminal job outcomes that must
// not exit 0: the details were already printed, main only maps the exit
// status (1 and 3 respectively).
var (
	errJobFailed    = errors.New("job failed")
	errJobCancelled = errors.New("job cancelled")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smtctl: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		switch {
		case errors.Is(err, flag.ErrHelp):
			os.Exit(0)
		case errors.Is(err, errUsage):
			os.Exit(2)
		case errors.Is(err, errJobFailed):
			log.Print(err)
			os.Exit(1)
		case errors.Is(err, errJobCancelled):
			log.Print(err)
			os.Exit(3)
		}
		log.Fatal(err)
	}
}

func usage(fs *flag.FlagSet, format string, v ...any) error {
	fmt.Fprintf(os.Stderr, "smtctl: "+format+"\n", v...)
	fs.Usage()
	return errUsage
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smtctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "smtd or coordinator address (host:port)")
	server := fs.String("server", "", "comma-separated server addresses for HA failover; overrides -addr (tries the next on refusal, follows X-Cluster-Leader redirects)")
	maxRetries := fs.Int("max-retries", 5, "retries for transient failures (429/502/503/504, dropped connections); 0 disables")
	timeout := fs.Duration("timeout", 0, "per-request budget; wait re-dials the event stream when it is silent this long (0: none)")
	tenantName := fs.String("tenant", "", "submit as this tenant (X-Tenant header; empty: the daemon's default tenant)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: smtctl [-addr host:port | -server a,b] [-max-retries n] [-timeout d] [-tenant name] submit|status|wait|result|cancel|cluster|study [args]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return usage(fs, "missing command")
	}
	addrs := *server
	if addrs == "" {
		addrs = *addr
	}
	c := client{ctx: ctx, eps: newEndpoints(addrs), out: out, retry: newRetrier(*maxRetries), timeout: *timeout, tenant: *tenantName}
	switch rest[0] {
	case "submit":
		return c.submit(rest[1:])
	case "status":
		return c.status(rest[1:])
	case "wait":
		return c.wait(rest[1:])
	case "result":
		return c.result(rest[1:])
	case "cancel":
		return c.cancel(rest[1:])
	case "cluster":
		return c.cluster(rest[1:])
	case "study":
		return c.study(rest[1:])
	}
	return usage(fs, "unknown command %q", rest[0])
}

type client struct {
	ctx     context.Context
	eps     *endpoints
	out     io.Writer
	retry   retrier
	timeout time.Duration
	// tenant, when non-empty, rides every submission as X-Tenant.
	tenant string
}

// base is the URL prefix for the next request — the current pick among
// the -server endpoints (a single -addr degenerates to one entry).
func (c client) base() string { return c.eps.base() }

// do sends the request and lets the endpoint picker see the outcome,
// so transport errors rotate to the next server and standby 503s jump
// to the advertised leader before the retrier's next attempt.
func (c client) do(hreq *http.Request) (*http.Response, error) {
	resp, err := http.DefaultClient.Do(hreq)
	c.eps.observe(resp, err)
	return resp, err
}

// get issues a ctx-bound GET so a signal cancels in-flight requests,
// not just backoff waits; -timeout additionally deadlines the attempt
// (headers and body both — the budget stays armed until Close).
func (c client) get(path string) (*http.Response, error) {
	rctx, cancel := c.reqCtx()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodGet, c.base()+path, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := c.do(hreq)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// apiError extracts the service's {"error": ...} body.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (c client) getJSON(path string, v any) error {
	resp, err := c.retry.do(c.ctx, "get "+path, func() (*http.Response, error) {
		return c.get(path)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// submit builds a one-cell batch from flags (or reads a raw batch from
// -f) and prints the assigned job ID.
func (c client) submit(args []string) error {
	fs := flag.NewFlagSet("smtctl submit", flag.ContinueOnError)
	fig := fs.String("fig", "", "harness cell: a named figure/table/study (fig1, fig2a, fig3, table1, sync, ...)")
	stream := fs.String("stream", "", "stream cell: comma-separated stream kinds to co-run (e.g. fadd,iload)")
	ilp := fs.String("ilp", "max", "stream cell ILP degree: min, med or max")
	window := fs.Uint64("window", 0, "stream cell measurement window in cycles (0: harness default)")
	kernel := fs.String("kernel", "", "kernel cell: mm, lu, cg or bt")
	mode := fs.String("mode", "serial", "kernel cell execution mode")
	size := fs.Int("size", 0, "kernel cell problem size (mm/lu matrix dimension)")
	file := fs.String("f", "", "submit a raw JSON batch from this file (\"-\": stdin)")
	observe := fs.Bool("observe", false, "request per-cell obs artifacts (stream/kernel cells)")
	deadline := fs.String("deadline", "", "fail the job with an explicit cause if not done within this duration (e.g. 90s)")
	priority := fs.Int("priority", 0, "queue priority: higher runs first and may preempt lower-priority checkpointable jobs")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}

	var req service.SubmitRequest
	switch {
	case *file != "":
		var data []byte
		var err error
		if *file == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*file)
		}
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &req); err != nil {
			return fmt.Errorf("parsing %s: %w", *file, err)
		}
	case *fig != "":
		name := *fig
		// Accept the CLI figure spellings too: "1" → fig1, "2a" → fig2a.
		if name != "" && name[0] >= '0' && name[0] <= '9' {
			name = "fig" + name
		}
		req.Cells = []service.CellSpec{{Type: service.TypeHarness, Harness: name}}
	case *stream != "":
		var cell service.CellSpec
		cell.Type = service.TypeStream
		cell.Window = *window
		cell.Observe = *observe
		for _, k := range strings.Split(*stream, ",") {
			cell.Streams = append(cell.Streams, service.StreamSpec{Kind: strings.TrimSpace(k), ILP: *ilp})
		}
		req.Cells = []service.CellSpec{cell}
	case *kernel != "":
		req.Cells = []service.CellSpec{{
			Type: service.TypeKernel, Kernel: *kernel, Mode: *mode, Size: *size, Observe: *observe,
		}}
	default:
		return usage(fs, "submit needs one of -fig, -stream, -kernel or -f")
	}
	// Flags layer over -f batches too, so a scripted batch can still get a
	// per-invocation deadline or priority.
	if *deadline != "" {
		req.Deadline = *deadline
	}
	if *priority != 0 {
		req.Priority = *priority
	}

	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	// The idempotency key is the content hash of the batch: if a retried
	// submit reaches a daemon that already accepted the first attempt,
	// the daemon hands back the live job instead of running it twice.
	idemKey := fmt.Sprintf("%x", sha256.Sum256(body))
	resp, err := c.retry.do(c.ctx, "submit", func() (*http.Response, error) {
		rctx, cancel := c.reqCtx()
		hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, c.base()+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("Idempotency-Key", idemKey)
		if c.tenant != "" {
			hreq.Header.Set("X-Tenant", c.tenant)
		}
		resp, err := c.do(hreq)
		if err != nil {
			cancel()
			return nil, err
		}
		resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
		return resp, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		if resp.StatusCode == http.StatusTooManyRequests {
			err := apiError(resp)
			if cause := resp.Header.Get("X-Quota-Cause"); cause != "" {
				err = fmt.Errorf("%w (tenant quota: %s)", err, cause)
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				err = fmt.Errorf("%w (retry after %ss)", err, ra)
			}
			return err
		}
		return apiError(resp)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Fprintln(c.out, st.ID)
	return nil
}

func jobArg(fs *flag.FlagSet, what string) (string, error) {
	if fs.NArg() != 1 {
		return "", usage(fs, "%s needs exactly one job ID", what)
	}
	return fs.Arg(0), nil
}

func (c client) status(args []string) error {
	fs := flag.NewFlagSet("smtctl status", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	id, err := jobArg(fs, "status")
	if err != nil {
		return err
	}
	var st service.JobStatus
	if err := c.getJSON("/v1/jobs/"+id, &st); err != nil {
		return err
	}
	enc := json.NewEncoder(c.out)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// wait follows the job's SSE stream until the terminal event, printing
// per-cell progress, and maps the outcome onto the exit status: done →
// 0, failed → 1 (with the failing cell's error), cancelled → 3. A cell
// error is surfaced the moment its event arrives, not at the end.
//
// A dropped stream is not an error: wait tracks the id of the last
// event it saw and reconnects with Last-Event-ID, so the daemon replays
// exactly the missed events and the outcome mapping is unaffected (up
// to -max-retries reconnects).
func (c client) wait(args []string) error {
	fs := flag.NewFlagSet("smtctl wait", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	id, err := jobArg(fs, "wait")
	if err != nil {
		return err
	}
	lastID := -1
	for try := 0; ; try++ {
		// The stream itself may legitimately outlive -timeout, so the
		// connection context has no deadline; instead an idle watchdog
		// cancels it when the stream goes silent for -timeout, and the
		// Last-Event-ID reconnect replays whatever was missed.
		wctx, wcancel := context.WithCancel(c.ctx)
		resp, err := c.retry.do(c.ctx, "wait "+id, func() (*http.Response, error) {
			hreq, err := http.NewRequestWithContext(wctx, http.MethodGet, c.base()+"/v1/jobs/"+id+"/events", nil)
			if err != nil {
				return nil, err
			}
			if lastID >= 0 {
				hreq.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
			}
			return c.do(hreq)
		})
		if err != nil {
			wcancel()
			return err
		}
		if resp.StatusCode != http.StatusOK {
			defer wcancel()
			defer resp.Body.Close()
			return apiError(resp)
		}
		var body io.Reader = resp.Body
		var idle *time.Timer
		if c.timeout > 0 {
			idle = time.AfterFunc(c.timeout, wcancel)
			body = idleReset{r: resp.Body, timer: idle, d: c.timeout}
		}
		done, outcome, cause := c.followEvents(body, id, *quiet, &lastID)
		if idle != nil {
			idle.Stop()
		}
		if wctx.Err() != nil && c.ctx.Err() == nil {
			cause = fmt.Errorf("no events for %v (idle watchdog)", c.timeout)
		}
		resp.Body.Close()
		wcancel()
		if done {
			return outcome
		}
		if try >= c.retry.max {
			return fmt.Errorf("event stream interrupted: %v", cause)
		}
		log.Printf("wait %s: %v; retrying from event %d (%d/%d)", id, cause, lastID, try+1, c.retry.max)
	}
}

// followEvents consumes one SSE connection. done reports that a
// terminal end event arrived, with the mapped outcome; otherwise cause
// says why the stream stopped early. lastID advances past every event
// seen, so the caller can resume without duplicates.
func (c client) followEvents(body io.Reader, id string, quiet bool, lastID *int) (done bool, outcome, cause error) {
	var event string
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.Atoi(strings.TrimPrefix(line, "id: ")); err == nil {
				*lastID = n
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "cell":
				var ev service.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return true, fmt.Errorf("bad event payload: %w", err), nil
				}
				switch {
				case ev.State == service.CellFailed:
					fmt.Fprintf(os.Stderr, "smtctl: cell %d (%s) failed: %s\n", ev.Cell, ev.Label, ev.Error)
				case quiet:
				case (ev.State == service.CellPreempted || ev.State == service.CellResumed) && ev.Error != "":
					// Preemption/resume events carry a detail message (why the
					// cell yielded, how many cycles the checkpoint saved).
					fmt.Fprintf(c.out, "cell %d (%s): %s: %s\n", ev.Cell, ev.Label, ev.State, ev.Error)
				default:
					fmt.Fprintf(c.out, "cell %d (%s): %s\n", ev.Cell, ev.Label, ev.State)
				}
			case "end":
				var end struct {
					State string `json:"state"`
					Error string `json:"error"`
				}
				if err := json.Unmarshal([]byte(data), &end); err != nil {
					return true, fmt.Errorf("bad end payload: %w", err), nil
				}
				switch end.State {
				case service.JobDone:
					if !quiet {
						fmt.Fprintf(c.out, "%s done\n", id)
					}
					return true, nil, nil
				case service.JobCancelled:
					return true, fmt.Errorf("%w: %s: %s", errJobCancelled, id, end.Error), nil
				default:
					return true, fmt.Errorf("%w: %s: %s", errJobFailed, id, end.Error), nil
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return false, nil, err
	}
	return false, nil, errors.New("stream ended before the job finished")
}

func (c client) result(args []string) error {
	fs := flag.NewFlagSet("smtctl result", flag.ContinueOnError)
	cell := fs.Int("cell", -1, "fetch one cell's result instead of the whole job")
	text := fs.Bool("text", false, "print a harness cell's formatted text verbatim (requires -cell)")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	id, err := jobArg(fs, "result")
	if err != nil {
		return err
	}
	if *text && *cell < 0 {
		return usage(fs, "-text requires -cell")
	}
	if *cell >= 0 {
		path := fmt.Sprintf("/v1/jobs/%s/cells/%d/result", id, *cell)
		if *text {
			resp, err := c.retry.do(c.ctx, "result "+id, func() (*http.Response, error) {
				return c.get(path + "?format=text")
			})
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return apiError(resp)
			}
			_, err = io.Copy(c.out, resp.Body)
			return err
		}
		var res service.CellResult
		if err := c.getJSON(path, &res); err != nil {
			return err
		}
		enc := json.NewEncoder(c.out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	var res service.JobResult
	if err := c.getJSON("/v1/jobs/"+id+"/result", &res); err != nil {
		return err
	}
	enc := json.NewEncoder(c.out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func (c client) cancel(args []string) error {
	fs := flag.NewFlagSet("smtctl cancel", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	id, err := jobArg(fs, "cancel")
	if err != nil {
		return err
	}
	// Cancelling an already-cancelled job is a no-op server-side, so the
	// DELETE is safe to retry.
	resp, err := c.retry.do(c.ctx, "cancel "+id, func() (*http.Response, error) {
		rctx, cancel := c.reqCtx()
		hreq, err := http.NewRequestWithContext(rctx, http.MethodDelete, c.base()+"/v1/jobs/"+id, nil)
		if err != nil {
			cancel()
			return nil, err
		}
		resp, err := c.do(hreq)
		if err != nil {
			cancel()
			return nil, err
		}
		resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
		return resp, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%s %s\n", st.ID, st.State)
	return nil
}

// cluster prints a coordinator's fleet topology: one line per worker
// plus the routing counters. A plain smtd answers 404 here — the one
// place the coordinator and daemon APIs differ.
func (c client) cluster(args []string) error {
	fs := flag.NewFlagSet("smtctl cluster", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw topology JSON")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}
	if fs.NArg() != 0 {
		return usage(fs, "cluster takes no arguments")
	}
	var top cluster.Topology
	if err := c.getJSON("/v1/cluster", &top); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(c.out)
		enc.SetIndent("", "  ")
		return enc.Encode(top)
	}
	fmt.Fprintf(c.out, "%-12s %-21s %-6s %11s %12s %8s\n", "worker", "addr", "alive", "outstanding", "qwait-ewma", "hb-age")
	for _, w := range top.Workers {
		alive := "yes"
		if !w.Alive {
			alive = "no"
		}
		hb := "-" // never heard from (seed workers before the first probe)
		if w.LastHeartbeatAgeSeconds >= 0 {
			hb = fmt.Sprintf("%.1fs", w.LastHeartbeatAgeSeconds)
		}
		fmt.Fprintf(c.out, "%-12s %-21s %-6s %11d %11.3fs %8s\n",
			w.Name, w.Addr, alive, w.Outstanding, w.QueueWaitEWMASeconds, hb)
	}
	fmt.Fprintf(c.out, "live %d/%d · vnodes %d · forwarded %d · steals %d · recovered %d · lost %d\n",
		top.Live, len(top.Workers), top.Vnodes, top.CellsForwarded, top.Steals, top.JobsRecovered, top.WorkersLost)
	if top.Role != "" {
		leader := top.LeaderAddr
		if leader == "" {
			leader = "unknown"
		}
		fmt.Fprintf(c.out, "ha: role %s · leader %s · lease term %d · journal seq %d · standby lag %dB\n",
			top.Role, leader, top.LeaseTerm, top.JournalSeq, top.StandbyLagBytes)
		fmt.Fprintf(c.out, "ha: promotions %d · demotions %d · jobs adopted %d",
			top.Promotions, top.Demotions, top.JobsAdopted)
		if top.FailoverLatencySeconds > 0 {
			fmt.Fprintf(c.out, " · last failover %.3fs", top.FailoverLatencySeconds)
		}
		fmt.Fprintln(c.out)
	}
	return nil
}
