package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTimeoutBoundsStalledRequest: a wedged connection must fail within
// the -timeout budget instead of hanging the command forever.
func TestTimeoutBoundsStalledRequest(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(stall)
	addr := strings.TrimPrefix(srv.URL, "http://")

	start := time.Now()
	_, err := ctl(t, addr, "-timeout", "100ms", "-max-retries", "0", "status", "j1")
	if err == nil {
		t.Fatal("status against a stalled server should fail")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("status took %v despite -timeout 100ms", elapsed)
	}
}

// TestWaitIdleWatchdogRedials: a silent event stream is re-dialed after
// -timeout with Last-Event-ID replay, so a wedged connection costs one
// reconnect, not a hung wait — and not a lost event.
func TestWaitIdleWatchdogRedials(t *testing.T) {
	var conns atomic.Int32
	var lastEventID atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		if conns.Add(1) == 1 {
			fmt.Fprintf(w, "id: 0\nevent: cell\ndata: {\"cell\":0,\"state\":\"done\"}\n\n")
			fl.Flush()
			<-r.Context().Done() // wedge: no further events, ever
			return
		}
		lastEventID.Store(r.Header.Get("Last-Event-ID"))
		fmt.Fprint(w, "event: end\ndata: {\"state\":\"done\"}\n\n")
		fl.Flush()
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	out, err := ctl(t, addr, "-timeout", "200ms", "wait", "j1")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if !strings.Contains(out, "j1 done") {
		t.Errorf("wait output %q lacks the terminal line", out)
	}
	if got := conns.Load(); got != 2 {
		t.Errorf("server saw %d connections, want 2 (wedged + redial)", got)
	}
	if got, _ := lastEventID.Load().(string); got != "0" {
		t.Errorf("redial sent Last-Event-ID %q, want \"0\"", got)
	}
}
