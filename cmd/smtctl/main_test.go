package main

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smtexplore/internal/service"
)

// startDaemon serves a real service over HTTP and returns the smtctl
// -addr value for it.
func startDaemon(t *testing.T, cfg service.Config) string {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return strings.TrimPrefix(srv.URL, "http://")
}

func ctl(t *testing.T, addr string, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), append([]string{"-addr", addr}, args...), &buf)
	return buf.String(), err
}

func TestSubmitWaitResult(t *testing.T) {
	addr := startDaemon(t, service.Config{Workers: 2})

	out, err := ctl(t, addr, "submit", "-stream", "fadd,iload", "-ilp", "med", "-window", "2000")
	if err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(out)
	if id == "" {
		t.Fatal("submit printed no job ID")
	}

	out, err = ctl(t, addr, "wait", id)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if !strings.Contains(out, id+" done") {
		t.Errorf("wait output %q lacks %q", out, id+" done")
	}

	out, err = ctl(t, addr, "result", "-cell", "0", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"state": "done"`) || !strings.Contains(out, `"cpi"`) {
		t.Errorf("cell result lacks state/cpi:\n%s", out)
	}

	out, err = ctl(t, addr, "status", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"state": "done"`) {
		t.Errorf("status lacks terminal state:\n%s", out)
	}
}

// A failing cell must surface through wait as a non-zero outcome carrying
// the cell's error — never a silent "done". The cell here passes submit
// validation (names are fine) and fails at runtime on the stream count.
func TestWaitSurfacesCellFailure(t *testing.T) {
	addr := startDaemon(t, service.Config{Workers: 2})

	batch := filepath.Join(t.TempDir(), "batch.json")
	spec := `{"cells":[{"type":"stream","window":2000,"streams":[{"kind":"fadd"},{"kind":"fadd"},{"kind":"fadd"}]}]}`
	if err := os.WriteFile(batch, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ctl(t, addr, "submit", "-f", batch)
	if err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(out)

	_, err = ctl(t, addr, "wait", id)
	if !errors.Is(err, errJobFailed) {
		t.Fatalf("wait on failing job = %v, want errJobFailed", err)
	}
	if !strings.Contains(err.Error(), "3 streams") {
		t.Errorf("failure error %q does not carry the cell error", err)
	}
}

// Cancellation is a distinct outcome from failure: exit status 3 via
// errJobCancelled, with the cancellation reason in the message.
func TestWaitSurfacesCancellation(t *testing.T) {
	addr := startDaemon(t, service.Config{Workers: 1, MaxActive: 1})

	out, err := ctl(t, addr, "submit", "-fig", "1")
	if err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(out)
	out, err = ctl(t, addr, "cancel", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, id) {
		t.Errorf("cancel output %q lacks the job ID", out)
	}

	_, err = ctl(t, addr, "wait", id)
	if !errors.Is(err, errJobCancelled) {
		t.Fatalf("wait on cancelled job = %v, want errJobCancelled", err)
	}
	if errors.Is(err, errJobFailed) {
		t.Error("cancelled job also reported as failed; the outcomes must stay distinct")
	}
}

func TestSubmitFigSpellings(t *testing.T) {
	// "-fig 1" and "-fig fig1" must land on the same harness; a bogus name
	// is rejected by the daemon at submit time.
	addr := startDaemon(t, service.Config{})
	if _, err := ctl(t, addr, "submit", "-fig", "nope"); err == nil {
		t.Error("submitting an unknown harness succeeded")
	}
	for _, name := range []string{"table1", "selective"} {
		out, err := ctl(t, addr, "submit", "-fig", name)
		if err != nil {
			t.Errorf("submit -fig %s: %v", name, err)
			continue
		}
		id := strings.TrimSpace(out)
		if _, err := ctl(t, addr, "cancel", id); err != nil {
			t.Errorf("cancel %s: %v", id, err)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"submit"},
		{"wait"},
		{"result", "-text", "j0001"},
		{"status"},
		{"-no-such-flag"},
	} {
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); !errors.Is(err, errUsage) {
			t.Errorf("run(%q) = %v, want errUsage", args, err)
		}
	}
}
