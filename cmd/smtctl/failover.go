package main

import (
	"net/http"
	"strings"
	"sync"
)

// endpoints is the client's view of the server set: one address for a
// single daemon, several for an HA coordinator pair (-server a,b). All
// requests go to the current endpoint; observe advances it when the
// server proves unreachable (transport error → rotate to the next) or
// names a better one (503 with X-Cluster-Leader → jump straight to the
// leader, a standby's redirect). Combined with the retrier — which
// already treats transport errors and 503 as transient — the next
// attempt lands on the new endpoint, so a coordinator failover shows
// up as client latency rather than a client error.
type endpoints struct {
	mu   sync.Mutex
	list []string // base URLs, e.g. "http://127.0.0.1:8377"
	cur  int
}

// newEndpoints parses a comma-separated address list into a picker
// starting at the first entry.
func newEndpoints(addrs string) *endpoints {
	e := &endpoints{}
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			e.list = append(e.list, "http://"+a)
		}
	}
	if len(e.list) == 0 {
		e.list = []string{"http://127.0.0.1:8377"}
	}
	return e
}

// base is the URL prefix for the next request.
func (e *endpoints) base() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.list[e.cur]
}

// observe steers the endpoint choice from one request's outcome. It
// only picks where the next attempt goes; the retrier still owns
// backoff, Retry-After, and giving up.
func (e *endpoints) observe(resp *http.Response, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case err != nil:
		// Connection refused, reset, timeout: the endpoint is gone or
		// partitioned — try the next one.
		e.cur = (e.cur + 1) % len(e.list)
	case resp.StatusCode == http.StatusServiceUnavailable:
		if leader := resp.Header.Get("X-Cluster-Leader"); leader != "" && leader != "unknown" {
			e.jumpLocked("http://" + leader)
		} else {
			// A 503 without a leader hint (draining daemon, standby that
			// has not seen a lease yet): rotate and hope.
			e.cur = (e.cur + 1) % len(e.list)
		}
	}
}

// jumpLocked points cur at base, learning it if the advertised leader
// is outside the -server list the user gave.
func (e *endpoints) jumpLocked(base string) {
	for i, b := range e.list {
		if b == base {
			e.cur = i
			return
		}
	}
	e.list = append(e.list, base)
	e.cur = len(e.list) - 1
}
