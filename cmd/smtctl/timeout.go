package main

import (
	"context"
	"io"
	"time"
)

// reqCtx bounds one request attempt with the global -timeout. Each
// retry gets a fresh budget, so -timeout caps a wedged connection, not
// the whole command. The cancel must outlive the response body — tie
// it to Close with cancelOnClose, or the decode races the deadline.
func (c client) reqCtx() (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(c.ctx, c.timeout)
	}
	return context.WithCancel(c.ctx)
}

// cancelOnClose releases a request's context when the caller finishes
// the body, keeping the deadline armed across the whole read.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	b.cancel()
	return b.ReadCloser.Close()
}

// idleReset re-arms the wait watchdog on every chunk the event stream
// delivers, so -timeout bounds silence, not total stream length — a
// healthy job may legitimately stream for far longer than the timeout.
type idleReset struct {
	r     io.Reader
	timer *time.Timer
	d     time.Duration
}

func (ir idleReset) Read(p []byte) (int, error) {
	n, err := ir.r.Read(p)
	if n > 0 {
		ir.timer.Reset(ir.d)
	}
	return n, err
}
