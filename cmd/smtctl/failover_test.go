package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smtexplore/internal/service"
)

func TestEndpointsRotateOnTransportError(t *testing.T) {
	e := newEndpoints("a:1, b:2")
	if got := e.base(); got != "http://a:1" {
		t.Fatalf("initial base %q", got)
	}
	e.observe(nil, context.DeadlineExceeded)
	if got := e.base(); got != "http://b:2" {
		t.Fatalf("after transport error base %q, want http://b:2", got)
	}
	e.observe(nil, context.DeadlineExceeded)
	if got := e.base(); got != "http://a:1" {
		t.Fatalf("rotation should wrap, got %q", got)
	}
}

func TestEndpointsFollowLeaderRedirect(t *testing.T) {
	e := newEndpoints("a:1,b:2")
	resp := &http.Response{
		StatusCode: http.StatusServiceUnavailable,
		Header:     http.Header{"X-Cluster-Leader": []string{"b:2"}},
	}
	e.observe(resp, nil)
	if got := e.base(); got != "http://b:2" {
		t.Fatalf("redirect to listed leader: base %q, want http://b:2", got)
	}

	// A leader outside the -server list is learned, not dropped.
	resp.Header.Set("X-Cluster-Leader", "c:3")
	e.observe(resp, nil)
	if got := e.base(); got != "http://c:3" {
		t.Fatalf("redirect to unlisted leader: base %q, want http://c:3", got)
	}

	// "unknown" (standby with no lease in sight) rotates instead.
	resp.Header.Set("X-Cluster-Leader", "unknown")
	e.observe(resp, nil)
	if got := e.base(); got == "http://c:3" {
		t.Fatal("unknown leader should rotate away from the failing endpoint")
	}

	// 2xx outcomes leave the pick alone.
	cur := e.base()
	e.observe(&http.Response{StatusCode: http.StatusOK, Header: http.Header{}}, nil)
	if got := e.base(); got != cur {
		t.Fatalf("success moved the endpoint: %q -> %q", cur, got)
	}
}

// A submit aimed at a dead endpoint plus a standby must land on the
// real daemon: the dead one rotates away on connection refused, the
// standby 503s with X-Cluster-Leader, and the retrier's next attempt
// follows it.
func TestClientFailsOverToLeader(t *testing.T) {
	leader := startDaemon(t, service.Config{Workers: 2})

	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cluster-Leader", leader)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"not the leader"}`, http.StatusServiceUnavailable)
	}))
	defer standby.Close()

	// A port that refuses connections: bind, then close.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()

	servers := deadAddr + "," + strings.TrimPrefix(standby.URL, "http://")
	out, err := ctl(t, "ignored:0", "-server", servers, "submit", "-stream", "fadd,iload", "-window", "2000")
	if err != nil {
		t.Fatalf("submit through failover chain: %v", err)
	}
	id := strings.TrimSpace(out)
	if id == "" {
		t.Fatal("submit printed no job ID")
	}
	// The picker now points at the learned leader; wait reuses it.
	if out, err = ctl(t, leader, "wait", id); err != nil {
		t.Fatalf("wait on leader: %v (out %q)", err, out)
	}
}
