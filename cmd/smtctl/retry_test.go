package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"smtexplore/internal/service"
)

// fakeAttempt builds an attempt closure that replays a scripted status
// sequence (0 = transport error).
func fakeAttempt(t *testing.T, codes []int, calls *int) func() (*http.Response, error) {
	t.Helper()
	return func() (*http.Response, error) {
		if *calls >= len(codes) {
			t.Fatalf("attempt called %d times, scripted %d", *calls+1, len(codes))
		}
		code := codes[*calls]
		*calls++
		if code == 0 {
			return nil, fmt.Errorf("dial tcp: connection refused")
		}
		rec := httptest.NewRecorder()
		if code == http.StatusTooManyRequests {
			rec.Header().Set("Retry-After", "1")
		}
		rec.WriteHeader(code)
		return rec.Result(), nil
	}
}

func TestRetrierBackoffAndOutcomes(t *testing.T) {
	ctx := context.Background()
	var slept []time.Duration
	r := newRetrier(3)
	r.sleep = func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }

	// Transport error, then 503, then success: two retries, then done.
	calls := 0
	resp, err := r.do(ctx, "x", fakeAttempt(t, []int{0, http.StatusServiceUnavailable, http.StatusOK}, &calls))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("do = (%v, %v), want 200", resp, err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d slept=%d, want 3 attempts with 2 sleeps", calls, len(slept))
	}
	for i, d := range slept {
		if d <= 0 || d > r.cap {
			t.Errorf("sleep %d = %v, want within (0, %v]", i, d, r.cap)
		}
	}

	// 429 with Retry-After: 1 — the jittered wait must respect the
	// server's mandate as its ceiling.
	slept = nil
	calls = 0
	resp, err = r.do(ctx, "x", fakeAttempt(t, []int{http.StatusTooManyRequests, http.StatusOK}, &calls))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("429 do = (%v, %v)", resp, err)
	}
	if len(slept) != 1 || slept[0] <= 0 || slept[0] > time.Second {
		t.Errorf("Retry-After sleep %v, want within (0, 1s]", slept)
	}

	// Non-retryable statuses return on the first attempt.
	calls = 0
	resp, _ = r.do(ctx, "x", fakeAttempt(t, []int{http.StatusBadRequest}, &calls))
	if calls != 1 || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("400: %d calls, status %d; want 1 call passing it through", calls, resp.StatusCode)
	}

	// An exhausted budget hands back the last failing response.
	r2 := newRetrier(1)
	r2.sleep = func(context.Context, time.Duration) error { return nil }
	calls = 0
	resp, _ = r2.do(ctx, "x", fakeAttempt(t, []int{http.StatusServiceUnavailable, http.StatusServiceUnavailable}, &calls))
	if calls != 2 || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("exhausted: %d calls, status %d; want 2 calls and the 503", calls, resp.StatusCode)
	}

	// max 0 disables retrying entirely.
	r3 := newRetrier(0)
	calls = 0
	if _, err := r3.do(ctx, "x", fakeAttempt(t, []int{0}, &calls)); err == nil || calls != 1 {
		t.Errorf("max-retries 0: err=%v calls=%d, want the transport error after 1 call", err, calls)
	}
}

// The regression the cluster smoke depends on: a cancellation (^C)
// during a long server-mandated Retry-After returns promptly with the
// context error, instead of sleeping out the full mandate. Before the
// fix, the jittered wait used time.Sleep and a 1-hour Retry-After held
// the process hostage.
func TestRetrierCancelledMidBackoffReturnsPromptly(t *testing.T) {
	r := newRetrier(3) // real sleepCtx, no stub: the select is under test
	ctx, cancel := context.WithCancel(context.Background())
	attempt := func() (*http.Response, error) {
		rec := httptest.NewRecorder()
		rec.Header().Set("Retry-After", "3600")
		rec.WriteHeader(http.StatusTooManyRequests)
		return rec.Result(), nil
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	resp, err := r.do(ctx, "x", attempt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("do under cancellation = (%v, %v), want context.Canceled", resp, err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to surface; the backoff wait is not honouring ctx", elapsed)
	}
}

// flakyDaemon wraps a real service handler with scripted failures and
// returns the address plus the service for registry assertions.
func flakyDaemon(t *testing.T, cfg service.Config, wrap func(http.Handler) http.Handler) (string, *service.Service) {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(wrap(svc.Handler()))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return strings.TrimPrefix(srv.URL, "http://"), svc
}

// A submit whose response is lost (the daemon accepted the job, the
// client saw a 503) is retried and deduplicated by the content-keyed
// Idempotency-Key: one job, not two.
func TestSubmitRetryIsIdempotent(t *testing.T) {
	var lost atomic.Bool
	addr, svc := flakyDaemon(t, service.Config{Workers: 1, MaxActive: 1},
		func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && lost.CompareAndSwap(false, true) {
					// The daemon processes the submit, but the response
					// never reaches the client.
					next.ServeHTTP(httptest.NewRecorder(), r)
					w.WriteHeader(http.StatusServiceUnavailable)
					return
				}
				next.ServeHTTP(w, r)
			})
		})

	// Occupy the single worker so the test job stays queued (a live job
	// is what holds its idempotency key).
	blocker, err := ctl(t, addr, "submit", "-fig", "1")
	if err != nil {
		t.Fatal(err)
	}

	out, err := ctl(t, addr, "submit", "-stream", "fadd", "-window", "2000")
	if err != nil {
		t.Fatalf("retried submit: %v", err)
	}
	id := strings.TrimSpace(out)
	if id == "" {
		t.Fatal("no job ID from retried submit")
	}
	if got := len(svc.Jobs()); got != 2 {
		t.Errorf("%d jobs in the registry, want 2 (blocker + one deduplicated submit)", got)
	}
	for _, jid := range []string{strings.TrimSpace(blocker), id} {
		if _, err := ctl(t, addr, "cancel", jid); err != nil {
			t.Errorf("cancel %s: %v", jid, err)
		}
	}
}

// A 429 backpressure response is retried after the mandated delay until
// the queue drains, instead of failing the submission.
func TestSubmitRetriesBackpressure(t *testing.T) {
	var rejected atomic.Int32
	addr, _ := flakyDaemon(t, service.Config{Workers: 1},
		func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && rejected.Add(1) <= 2 {
					w.Header().Set("Retry-After", "0")
					w.WriteHeader(http.StatusTooManyRequests)
					return
				}
				next.ServeHTTP(w, r)
			})
		})
	out, err := ctl(t, addr, "submit", "-stream", "fadd", "-window", "2000")
	if err != nil {
		t.Fatalf("submit through 429s: %v", err)
	}
	if strings.TrimSpace(out) == "" {
		t.Fatal("no job ID")
	}
	if got := rejected.Load(); got < 3 {
		t.Errorf("submit endpoint hit %d times, want >= 3 (two rejections + success)", got)
	}
}

// abortAfterFlush cuts an SSE connection after its first flush, so the
// client sees a mid-stream drop with events already delivered.
type abortAfterFlush struct {
	http.ResponseWriter
	flushed bool
}

func (a *abortAfterFlush) Flush() {
	if a.flushed {
		panic(http.ErrAbortHandler)
	}
	a.flushed = true
	a.ResponseWriter.(http.Flusher).Flush()
}

func (a *abortAfterFlush) Write(p []byte) (int, error) {
	if a.flushed {
		panic(http.ErrAbortHandler)
	}
	return a.ResponseWriter.Write(p)
}

// wait survives a dropped SSE stream: it reconnects with Last-Event-ID
// and finishes with the correct outcome, without duplicating events.
func TestWaitReconnectsDroppedStream(t *testing.T) {
	var eventsCalls atomic.Int32
	addr, _ := flakyDaemon(t, service.Config{Workers: 1},
		func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasSuffix(r.URL.Path, "/events") && eventsCalls.Add(1) == 1 {
					next.ServeHTTP(&abortAfterFlush{ResponseWriter: w}, r)
					return
				}
				next.ServeHTTP(w, r)
			})
		})

	out, err := ctl(t, addr, "submit", "-stream", "fadd,iload", "-window", "2000")
	if err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(out)
	out, err = ctl(t, addr, "wait", id)
	if err != nil {
		t.Fatalf("wait across dropped stream: %v", err)
	}
	if !strings.Contains(out, id+" done") {
		t.Errorf("wait output %q lacks %q", out, id+" done")
	}
	if got := eventsCalls.Load(); got != 2 {
		t.Errorf("events endpoint hit %d times, want 2 (drop + reconnect)", got)
	}
	if n := strings.Count(out, "cell 0 ("); n != 1 {
		t.Errorf("cell 0 reported %d times across reconnect, want exactly once:\n%s", n, out)
	}
}

// The backoff jitter must come from the retrier's own seeded source,
// not the process-global one: identical seeds draw identical jitter,
// and draws elsewhere in the process cannot perturb the sequence.
func TestRetryJitterIsOwnSeededSource(t *testing.T) {
	draws := func(seed uint64) []time.Duration {
		r := newRetrier(3)
		r.rng = rand.New(rand.NewPCG(seed, seed))
		var waits []time.Duration
		r.sleep = func(_ context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		}
		calls := 0
		r.do(context.Background(), "test", func() (*http.Response, error) {
			calls++
			return nil, fmt.Errorf("transient %d", calls)
		})
		return waits
	}
	a, b := draws(7), draws(7)
	if len(a) != 3 {
		t.Fatalf("expected 3 backoff waits, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	if c := draws(8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatalf("different seeds drew identical jitter: %v", c)
	}
}
