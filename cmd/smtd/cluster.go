package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"smtexplore/internal/cluster"
)

// coordOpts carries the coordinator-mode command-line choices into
// runCoordinator without a telescoping parameter list.
type coordOpts struct {
	addr     string // -addr
	addrFile string // -addr-file
	seeds    string // -workers-list
	peer     string // -peer: the other half of an HA pair ("" = single coordinator)
	name     string // -name: lease holder identity (default: the bound address)
	storeDir string // -store: the shared directory hosting ha/ lease + journal
	leaseTTL time.Duration
}

// runCoordinator serves the cluster coordinator: the single-daemon job
// API over a fleet of workers, plus /v1/cluster for topology and
// registration. Seeds is the -workers-list value — comma-separated
// name=addr (or bare addr) entries admitted before listening; workers
// started with -join register themselves afterwards. With -peer set
// the coordinator instead runs as half of an HA pair.
func runCoordinator(ctx context.Context, out io.Writer, o coordOpts, cfg cluster.Config) error {
	if o.peer != "" {
		return runHACoordinator(ctx, out, o, cfg)
	}
	c := cluster.New(cfg)
	defer c.Close()
	for _, seed := range strings.Split(o.seeds, ",") {
		seed = strings.TrimSpace(seed)
		if seed == "" {
			continue
		}
		name, waddr := seed, seed
		if i := strings.IndexByte(seed, '='); i >= 0 {
			name, waddr = seed[:i], seed[i+1:]
		}
		c.AddWorker(cluster.NewRemote(name, waddr))
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(out, "smtd: coordinating on %s (%d seed workers)\n", bound, len(c.Topology().Workers))

	srv := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	fmt.Fprintln(out, "smtd: bye")
	return nil
}

// runHACoordinator serves one half of an HA coordinator pair. The
// listener is bound before the HA node starts so the advertised
// X-Cluster-Leader address is the real bound address (matters with
// -addr :0). Leadership, journal replication, and failover live in
// cluster.HANode; this function only wires the daemon plumbing.
func runHACoordinator(ctx context.Context, out io.Writer, o coordOpts, cfg cluster.Config) error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	name := o.name
	if name == "" {
		name = bound
	}
	n, err := cluster.NewHA(cluster.HAConfig{
		Name: name,
		Addr: bound,
		// The store dir is shared between the pair; the HA state rides a
		// subdirectory the content-addressed store ignores.
		Dir:         filepath.Join(o.storeDir, "ha"),
		TTL:         o.leaseTTL,
		Peers:       []string{o.peer},
		Coordinator: cfg,
		Log:         out,
	})
	if err != nil {
		ln.Close()
		return err
	}
	fmt.Fprintf(out, "smtd: coordinating on %s (ha pair %s, peer %s, lease ttl %v)\n",
		bound, name, o.peer, o.leaseTTL)

	srv := &http.Server{Handler: n.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		n.Close()
		return err
	case <-ctx.Done():
	}
	// Close before shutting the listener down: if this node leads, Close
	// releases the lease so the peer can promote immediately instead of
	// waiting out the TTL.
	n.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	fmt.Fprintln(out, "smtd: bye")
	return nil
}

// heartbeat re-registers this worker with the coordinator until ctx is
// cancelled. Registration is idempotent on the coordinator side, so a
// steady beat doubles as liveness advertising and as automatic re-join
// after a coordinator restart (whose fresh ring starts empty).
func heartbeat(ctx context.Context, coordinator, name, addr string) {
	body, err := json.Marshal(map[string]string{"name": name, "addr": addr})
	if err != nil {
		panic(err) // a map[string]string always marshals
	}
	client := &http.Client{Timeout: 2 * time.Second}
	t := time.NewTicker(300 * time.Millisecond)
	defer t.Stop()
	registered := false
	for {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost,
			"http://"+coordinator+"/v1/cluster/register", bytes.NewReader(body))
		if rerr == nil {
			req.Header.Set("Content-Type", "application/json")
			resp, derr := client.Do(req)
			ok := derr == nil && resp.StatusCode == http.StatusOK
			if derr == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if ctx.Err() != nil {
				return
			}
			// Log only the transitions, not the steady state.
			if ok && !registered {
				log.Printf("registered with coordinator %s as %s", coordinator, name)
			}
			if !ok && registered {
				log.Printf("coordinator %s unreachable; will keep retrying", coordinator)
			}
			registered = ok
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
