// Command smtd is the simulation-as-a-service daemon: it exposes the
// reproduction's simulator over HTTP/JSON. Clients submit batches of
// cells — stream-pair CPI measurements, kernel runs, or whole named
// harnesses like fig1 — and poll or stream progress while a bounded job
// queue executes them through the shared result cache, optionally
// backed by a disk store shared with the CLI tools.
//
// Usage:
//
//	smtd                                  # listen on 127.0.0.1:8377
//	smtd -addr 127.0.0.1:0 -addr-file a  # random port, written to a
//	smtd -store cells/                    # persist results across restarts
//	smtd -jobs 2 -queue 16 -workers 4     # concurrency and backpressure
//	smtd -artifacts obs/                  # enable observe cells
//	smtd -journal jobs/                   # crash-safe job journal
//	smtd -cell-timeout 30s                # per-cell watchdog
//	smtd -checkpoint-cycles 100000        # pausable kernel cells: preemption, drain/restart resume
//	smtd -queue-wait-target 2s            # AIMD admission: shed load when queue waits exceed this
//	smtd -tenants tenants.json            # per-tenant quotas + weighted fair-share scheduling
//	smtd -fault-plan plan.json            # arm a fault-injection plan (chaos testing)
//	smtd -coordinator -workers-list w0=127.0.0.1:9000,w1=127.0.0.1:9001
//	                                      # shard jobs across a worker fleet
//	smtd -coordinator -peer 127.0.0.1:8371 -store shared/
//	                                      # half of an HA coordinator pair
//	smtd -join 127.0.0.1:8370,127.0.0.1:8371 -name w0
//	                                      # worker: register with coordinator(s)
//
// In -coordinator mode the daemon runs no simulations itself: it
// consistent-hashes each submitted cell to a worker, forwards it over
// the same HTTP/JSON API, and mirrors progress — so clients cannot tell
// a coordinator from a single daemon. Workers join the fleet either via
// the -workers-list seed or by running with -join, which heartbeats a
// registration so fleets survive coordinator restarts.
//
// With -peer the coordinator runs as half of an HA pair: both halves
// share the -store directory, where a lease file elects exactly one
// leader and a fenced routing journal replicates ring membership, job
// routing, and tenant accounting to the standby. If the leader dies,
// the standby steals the lease within about one -lease-ttl, re-adopts
// live jobs from the journal, and keeps serving; the demoted side
// answers 503 with an X-Cluster-Leader header so clients can follow.
//
// Endpoints: POST /v1/jobs, GET /v1/jobs[/{id}[/events|/result]],
// DELETE /v1/jobs/{id}, GET /healthz, GET /metrics (Prometheus text).
// Coordinators additionally serve GET /v1/cluster (topology) and
// POST /v1/cluster/register (worker admission).
// On SIGINT/SIGTERM the daemon stops intake (healthz turns 503),
// finishes every accepted job within -drain-timeout, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"smtexplore/internal/cluster"
	"smtexplore/internal/faultinject"
	"smtexplore/internal/runner"
	"smtexplore/internal/service"
	"smtexplore/internal/store"
	"smtexplore/internal/tenant"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("smtd: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run configures and serves the daemon until ctx is cancelled (signal)
// or the listener fails. Tests drive it with their own context.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smtd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (host:port; :0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts using -addr :0)")
	storeDir := fs.String("store", "", "disk-backed result store directory (empty: in-memory only)")
	storeMax := fs.Int64("store-max-bytes", 256<<20, "disk store size bound before LRU eviction (<=0: unbounded)")
	cacheEntries := fs.Int("cache-entries", 4096, "in-memory cache entry bound before LRU eviction (<=0: unbounded)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells per job (must be >= 1)")
	jobs := fs.Int("jobs", 2, "concurrent jobs (must be >= 1)")
	queue := fs.Int("queue", 16, "queued jobs beyond the active ones before 429 backpressure (must be >= 1)")
	artifacts := fs.String("artifacts", "", "observability artifact directory (empty: observe cells rejected)")
	drain := fs.Duration("drain-timeout", time.Minute, "graceful shutdown budget for accepted jobs")
	journalDir := fs.String("journal", "", "crash-safe job journal directory (empty: accepted jobs are lost on crash)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell watchdog budget (0: no watchdog)")
	checkpointCycles := fs.Uint64("checkpoint-cycles", 0, "kernel cell pause-point interval in simulated cycles (0: checkpointing off)")
	stopGrace := fs.Duration("stop-grace", 0, "watchdog wait for a stopping cell's final checkpoint (0: 2s default)")
	queueWaitTarget := fs.Duration("queue-wait-target", 0, "queue wait above which the AIMD limiter sheds load (0: no adaptive shedding)")
	tenantsFile := fs.String("tenants", "", "per-tenant quota/weight config JSON (empty: every tenant unlimited, weight 1)")
	ageAfter := fs.Duration("age-after", 0, "queue wait after which a job outranks fair-share and strict priority (0: 30s default; negative: aging off)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive store I/O failures before degrading to memory-only caching")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "wait before probing a degraded store again")
	faultPlan := fs.String("fault-plan", "", "fault-injection plan JSON (chaos testing only; never set in production)")
	coordinator := fs.Bool("coordinator", false, "run as a cluster coordinator instead of a simulating daemon")
	workersList := fs.String("workers-list", "", "coordinator: comma-separated seed workers (name=addr or addr)")
	vnodes := fs.Int("vnodes", 0, "coordinator: virtual nodes per worker on the hash ring (0: default 128)")
	healthInterval := fs.Duration("health-interval", 0, "coordinator: worker health/telemetry probe interval (0: default 500ms)")
	probeTimeout := fs.Duration("probe-timeout", 0, "coordinator: per-probe deadline; slow-but-healthy workers are not strikes (0: max(2s, 2x health-interval))")
	stealMargin := fs.Int("steal-margin", 0, "coordinator: outstanding-jobs divergence before work stealing (0: default 2)")
	pollInterval := fs.Duration("poll-interval", 0, "coordinator: remote-job progress poll interval (0: default 75ms)")
	pollJitter := fs.Float64("poll-jitter", 0, "coordinator: poll spread as a fraction of -poll-interval (0: default 0.2; negative: none)")
	peer := fs.String("peer", "", "coordinator: run as half of an HA pair; the other coordinator's address (requires -coordinator and -store)")
	leaseTTL := fs.Duration("lease-ttl", 2*time.Second, "coordinator HA: leadership lease window; failover detection is bounded by this")
	join := fs.String("join", "", "worker: comma-separated coordinator addresses to heartbeat registrations to")
	name := fs.String("name", "", "worker: name to register under with -join; HA coordinator: lease holder identity (default: the bound address)")
	allowFaultAPI := fs.Bool("allow-fault-api", false, "open POST/DELETE /v1/faults for remote fault-plan arming (chaos testing only; never set in production)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the flag package already reported the problem
	}
	bad := func(format string, v ...any) error {
		fmt.Fprintf(os.Stderr, "smtd: "+format+"\n", v...)
		fs.Usage()
		return errUsage
	}
	if *coordinator && *join != "" {
		return bad("-coordinator and -join are mutually exclusive: a daemon is either the coordinator or a worker")
	}
	if !*coordinator && *workersList != "" {
		return bad("-workers-list requires -coordinator")
	}
	if !*coordinator && *peer != "" {
		return bad("-peer requires -coordinator: only coordinators form an HA pair")
	}
	if *peer != "" && *storeDir == "" {
		return bad("-peer requires -store: the HA lease and routing journal live under the shared store directory")
	}
	if *peer != "" && *workersList != "" {
		return bad("-workers-list cannot be combined with -peer: HA workers must -join both coordinators so they survive failover")
	}
	var tenants *tenant.Registry
	if *tenantsFile != "" {
		var err error
		if tenants, err = tenant.LoadFile(*tenantsFile); err != nil {
			return err
		}
		fmt.Fprintf(out, "smtd: tenants %s: %d configured\n", *tenantsFile, len(tenants.Names()))
	}
	if *coordinator {
		return runCoordinator(ctx, out, coordOpts{
			addr:     *addr,
			addrFile: *addrFile,
			seeds:    *workersList,
			peer:     *peer,
			name:     *name,
			storeDir: *storeDir,
			leaseTTL: *leaseTTL,
		}, cluster.Config{
			Vnodes:         *vnodes,
			HealthInterval: *healthInterval,
			ProbeTimeout:   *probeTimeout,
			StealMargin:    *stealMargin,
			PollInterval:   *pollInterval,
			PollJitter:     *pollJitter,
			Tenants:        tenants,
		})
	}
	if *workers < 1 {
		return bad("invalid -workers %d (must be >= 1)", *workers)
	}
	if *jobs < 1 {
		return bad("invalid -jobs %d (must be >= 1)", *jobs)
	}
	if *queue < 1 {
		return bad("invalid -queue %d (must be >= 1)", *queue)
	}

	if *faultPlan != "" {
		if _, err := faultinject.ArmFile(*faultPlan); err != nil {
			return err
		}
		fmt.Fprintf(out, "smtd: fault plan %s armed (chaos mode)\n", *faultPlan)
	}

	cache := runner.NewCache().WithLimit(*cacheEntries)
	cfg := service.Config{
		Workers:         *workers,
		MaxActive:       *jobs,
		QueueDepth:      *queue,
		Cache:           cache,
		ArtifactDir:     *artifacts,
		CellTimeout:     *cellTimeout,
		CheckpointEvery: *checkpointCycles,
		StopGrace:       *stopGrace,
		QueueWaitTarget: *queueWaitTarget,
		Tenants:         tenants,
		StoreLedger:     store.NewLedger(),
		AgeAfter:        *ageAfter,
		AllowFaultAPI:   *allowFaultAPI,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *storeMax)
		if err != nil {
			return err
		}
		// The breaker sits between the cache and the disk: a sick disk
		// degrades the daemon to memory-only caching instead of failing
		// cells, and /healthz reports (and probes) the degradation.
		br := store.NewBreaker(st, *breakerThreshold, *breakerCooldown)
		cache.WithTier(br)
		cfg.Store = st
		cfg.Breaker = br
		// Checkpoints ride the same degradation-tolerant disk path as
		// results, which is what lets a restarted daemon resume cells the
		// previous process parked mid-run.
		cfg.CheckpointSink = br
		ss := st.Stats()
		fmt.Fprintf(out, "smtd: store %s: %d entries, %d bytes\n", *storeDir, ss.Entries, ss.Bytes)
	}
	if *journalDir != "" {
		jl, err := service.OpenJournal(*journalDir)
		if err != nil {
			return err
		}
		cfg.Journal = jl
	}

	svc := service.New(cfg)
	if cfg.Journal != nil {
		if m := svc.Snapshot(); m.JobsRecovered+m.JobsAbandoned > 0 {
			fmt.Fprintf(out, "smtd: journal %s: recovered %d jobs, abandoned %d\n", *journalDir, m.JobsRecovered, m.JobsAbandoned)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			svc.Close()
			return err
		}
	}
	fmt.Fprintf(out, "smtd: listening on %s\n", bound)
	if *join != "" {
		wname := *name
		if wname == "" {
			wname = bound
		}
		// One heartbeat per coordinator: in an HA pair the worker
		// advertises itself to both, so whichever holds the lease
		// (now or after a failover) can route to it immediately.
		for _, co := range strings.Split(*join, ",") {
			if co = strings.TrimSpace(co); co != "" {
				go heartbeat(ctx, co, wname, bound)
			}
		}
	}

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop intake first so /healthz flips to 503 and new
	// submissions are refused, finish accepted jobs, then close the
	// listener (late pollers can still read results until the very end).
	fmt.Fprintf(out, "smtd: draining (budget %v)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintf(out, "smtd: drain incomplete: %v\n", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	srv.Shutdown(sctx)
	fmt.Fprintln(out, "smtd: bye")
	return nil
}
