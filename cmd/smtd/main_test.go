package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"smtexplore/internal/cluster"
)

// startSmtd runs the daemon with a random port and returns its bound
// address plus a shutdown func that triggers the graceful drain and
// returns run's output.
func startSmtd(t *testing.T, extra ...string) (addr string, shutdown func() string) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())

	var buf bytes.Buffer
	var mu sync.Mutex
	runErr := make(chan error, 1)
	go func() {
		args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
		mu.Lock()
		w := &lockedWriter{mu: &mu, w: &buf}
		mu.Unlock()
		runErr <- run(ctx, args, w)
	}()

	deadline := time.After(10 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(data) > 0 {
			addr = strings.TrimSpace(string(data))
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("smtd exited before binding: %v", err)
		case <-deadline:
			t.Fatal("smtd never wrote the addr file")
		case <-time.After(5 * time.Millisecond):
		}
	}

	return addr, func() string {
		cancel()
		select {
		case err := <-runErr:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("smtd did not shut down")
		}
		mu.Lock()
		defer mu.Unlock()
		return buf.String()
	}
}

// lockedWriter serialises the daemon goroutine's writes against the
// test's final read.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestDaemonLifecycle(t *testing.T) {
	store := t.TempDir()
	addr, shutdown := startSmtd(t, "-store", store)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/jobs", "application/json",
		strings.NewReader(`{"cells":[{"type":"stream","window":2000,"streams":[{"kind":"fadd"}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}

	out := shutdown()
	for _, want := range []string{"listening on " + addr, "draining", "smtd: bye"} {
		if !strings.Contains(out, want) {
			t.Errorf("daemon output lacks %q:\n%s", want, out)
		}
	}
	// The graceful drain finished the accepted job; its result reached the
	// disk store.
	des, err := os.ReadDir(store)
	if err != nil {
		t.Fatal(err)
	}
	var cells int
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".cell") {
			cells++
		}
	}
	if cells == 0 {
		t.Error("no store entries written by the drained job")
	}
}

// The full cluster lifecycle through the real binary entry point: a
// coordinator process, two workers that -join it via heartbeat, a job
// submitted to the coordinator and executed by the fleet.
func TestCoordinatorJoinLifecycle(t *testing.T) {
	coordAddr, shutCoord := startSmtd(t, "-coordinator", "-health-interval", "50ms")
	_, shutW1 := startSmtd(t, "-join", coordAddr, "-name", "w1")
	_, shutW2 := startSmtd(t, "-join", coordAddr, "-name", "w2")
	defer func() { shutW1(); shutW2() }()

	get := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get("http://" + coordAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// Both workers register through the -join heartbeat.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var top cluster.Topology
		get("/v1/cluster", &top)
		if top.Live == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered: %+v", top)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A job submitted to the coordinator runs on the fleet and finishes.
	resp, err := http.Post("http://"+coordAddr+"/v1/jobs", "application/json",
		strings.NewReader(`{"cells":[{"type":"stream","window":2000,"streams":[{"kind":"fadd"}]},`+
			`{"type":"stream","window":2001,"streams":[{"kind":"iload"}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || status.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, status)
	}
	for deadline = time.Now().Add(30 * time.Second); ; time.Sleep(10 * time.Millisecond) {
		get("/v1/jobs/"+status.ID, &status)
		if status.State == "done" {
			break
		}
		if status.State == "failed" || status.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("cluster job state %q", status.State)
		}
	}

	out := shutCoord()
	for _, want := range []string{"coordinating on " + coordAddr, "smtd: bye"} {
		if !strings.Contains(out, want) {
			t.Errorf("coordinator output lacks %q:\n%s", want, out)
		}
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-jobs", "0"},
		{"-queue", "0"},
		{"-coordinator", "-join", "127.0.0.1:1"},
		{"-workers-list", "a=127.0.0.1:1"},
		{"-no-such-flag"},
	} {
		if err := run(context.Background(), args, io.Discard); !errors.Is(err, errUsage) {
			t.Errorf("run(%q) = %v, want errUsage", args, err)
		}
	}
}
