// Command kernels regenerates the benchmark experiments of Section 5 of
// the paper: the Figure 3 (Matrix Multiplication), Figure 4 (LU
// decomposition) and Figure 5 (NAS CG and BT) panel groups, and the
// Table 1 instruction-mix breakdown.
//
// Usage:
//
//	kernels -bench mm         # Figure 3
//	kernels -bench lu         # Figure 4
//	kernels -bench cg         # Figure 5, CG panels
//	kernels -bench bt         # Figure 5, BT panels
//	kernels -bench all        # all figures
//	kernels -table 1          # Table 1
//	kernels -sizes 32,64      # override the MM/LU problem sizes
//	kernels -workers 4        # bound the concurrent simulation cells
//	kernels -bench mm -observe obs/        # per-cell trace/occupancy/metrics
//	kernels -observe obs/ -observe-match tlp-fine
//
// Simulation cells fan out over -workers (default: all cores); one
// result cache spans the invocation. Output is byte-identical to
// -workers 1. With -observe, matching cells additionally write pipeline
// traces, occupancy series and metrics snapshots into the directory
// (those cells bypass the cache — a cache hit has nothing to trace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
	"smtexplore/internal/store"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("kernels: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// parseSizes parses a comma-separated size list ("32,64").
func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// observeFlags assembles the optional artifact sink shared by the
// experiment CLIs.
func observeFlags(fs *flag.FlagSet) func() *experiments.Observe {
	dir := fs.String("observe", "", "write per-cell trace/occupancy/metrics artifacts into this directory")
	match := fs.String("observe-match", "", "observe only cells whose label contains this substring")
	return func() *experiments.Observe {
		if *dir == "" {
			return nil
		}
		ob := &experiments.Observe{Dir: *dir}
		if *match != "" {
			ob.Match = experiments.MatchSubstring(*match)
		}
		return ob
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kernels", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark figure to regenerate: mm, lu, cg, bt or all")
	table := fs.Int("table", 0, "table to regenerate (1)")
	sizes := fs.String("sizes", "", "comma-separated MM/LU problem sizes (default: the paper's 32,64,128)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells (must be >= 1)")
	storeDir := fs.String("store", "", "disk-backed result store directory, shared with smtd and the other CLIs")
	observe := observeFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the flag package already reported the problem
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "kernels: invalid -workers %d (must be >= 1)\n", *workers)
		fs.Usage()
		return errUsage
	}
	mmSizes, luSizes := experiments.MMSizes(), experiments.LUSizes()
	if ns, err := parseSizes(*sizes); err != nil {
		return err
	} else if ns != nil {
		mmSizes, luSizes = ns, ns
	}
	cache := runner.NewCache()
	if *storeDir != "" {
		st, err := store.Open(*storeDir, 0)
		if err != nil {
			return err
		}
		cache.WithTier(st)
	}

	if *bench == "" && *table == 0 {
		*bench = "all"
		*table = 1
	}

	ctx := context.Background()
	opt := experiments.Options{Workers: *workers, Cache: cache, Observe: observe()}
	runFig := func(name string) error {
		switch name {
		case "mm":
			ms, err := experiments.Fig3MM(ctx, opt, mmSizes)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatKernelFigure("Figure 3 — Matrix Multiplication", ms))
		case "lu":
			ms, err := experiments.Fig4LU(ctx, opt, luSizes)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatKernelFigure("Figure 4 — LU decomposition", ms))
		case "cg":
			ms, err := experiments.Fig5CG(ctx, opt)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatKernelFigure("Figure 5 — NAS CG", ms))
		case "bt":
			ms, err := experiments.Fig5BT(ctx, opt)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatKernelFigure("Figure 5 — NAS BT", ms))
		default:
			return fmt.Errorf("unknown benchmark %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}

	switch *bench {
	case "all":
		for _, b := range []string{"mm", "lu", "cg", "bt"} {
			if err := runFig(b); err != nil {
				return err
			}
		}
	case "":
	default:
		if err := runFig(*bench); err != nil {
			return err
		}
	}

	if *table == 1 {
		cols, err := experiments.Table1(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable1(cols))
	} else if *table != 0 {
		return fmt.Errorf("unknown table %d", *table)
	}
	return nil
}
