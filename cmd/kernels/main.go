// Command kernels regenerates the benchmark experiments of Section 5 of
// the paper: the Figure 3 (Matrix Multiplication), Figure 4 (LU
// decomposition) and Figure 5 (NAS CG and BT) panel groups, and the
// Table 1 instruction-mix breakdown.
//
// Usage:
//
//	kernels -bench mm         # Figure 3
//	kernels -bench lu         # Figure 4
//	kernels -bench cg         # Figure 5, CG panels
//	kernels -bench bt         # Figure 5, BT panels
//	kernels -bench all        # all figures
//	kernels -table 1          # Table 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"smtexplore/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kernels: ")
	bench := flag.String("bench", "", "benchmark figure to regenerate: mm, lu, cg, bt or all")
	table := flag.Int("table", 0, "table to regenerate (1)")
	flag.Parse()

	if *bench == "" && *table == 0 {
		*bench = "all"
		*table = 1
	}

	run := func(name string) {
		switch name {
		case "mm":
			ms, err := experiments.Fig3MM(experiments.MMSizes())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatKernelFigure("Figure 3 — Matrix Multiplication", ms))
		case "lu":
			ms, err := experiments.Fig4LU(experiments.LUSizes())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatKernelFigure("Figure 4 — LU decomposition", ms))
		case "cg":
			ms, err := experiments.Fig5CG()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatKernelFigure("Figure 5 — NAS CG", ms))
		case "bt":
			ms, err := experiments.Fig5BT()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatKernelFigure("Figure 5 — NAS BT", ms))
		default:
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		fmt.Println()
	}

	switch *bench {
	case "all":
		for _, b := range []string{"mm", "lu", "cg", "bt"} {
			run(b)
		}
	case "":
	default:
		run(*bench)
	}

	if *table == 1 {
		cols, err := experiments.Table1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable1(cols))
	} else if *table != 0 {
		log.Fatalf("unknown table %d", *table)
	}
}
