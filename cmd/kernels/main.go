// Command kernels regenerates the benchmark experiments of Section 5 of
// the paper: the Figure 3 (Matrix Multiplication), Figure 4 (LU
// decomposition) and Figure 5 (NAS CG and BT) panel groups, and the
// Table 1 instruction-mix breakdown.
//
// Usage:
//
//	kernels -bench mm         # Figure 3
//	kernels -bench lu         # Figure 4
//	kernels -bench cg         # Figure 5, CG panels
//	kernels -bench bt         # Figure 5, BT panels
//	kernels -bench all        # all figures
//	kernels -table 1          # Table 1
//	kernels -workers 4        # bound the concurrent simulation cells
//
// Simulation cells fan out over -workers (default: all cores); one
// result cache spans the invocation. Output is byte-identical to
// -workers 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kernels: ")
	bench := flag.String("bench", "", "benchmark figure to regenerate: mm, lu, cg, bt or all")
	table := flag.Int("table", 0, "table to regenerate (1)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells (must be >= 1)")
	flag.Parse()
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "kernels: invalid -workers %d (must be >= 1)\n", *workers)
		flag.Usage()
		os.Exit(2)
	}

	if *bench == "" && *table == 0 {
		*bench = "all"
		*table = 1
	}

	ctx := context.Background()
	opt := experiments.Options{Workers: *workers, Cache: runner.NewCache()}
	run := func(name string) {
		switch name {
		case "mm":
			ms, err := experiments.Fig3MM(ctx, opt, experiments.MMSizes())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatKernelFigure("Figure 3 — Matrix Multiplication", ms))
		case "lu":
			ms, err := experiments.Fig4LU(ctx, opt, experiments.LUSizes())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatKernelFigure("Figure 4 — LU decomposition", ms))
		case "cg":
			ms, err := experiments.Fig5CG(ctx, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatKernelFigure("Figure 5 — NAS CG", ms))
		case "bt":
			ms, err := experiments.Fig5BT(ctx, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatKernelFigure("Figure 5 — NAS BT", ms))
		default:
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		fmt.Println()
	}

	switch *bench {
	case "all":
		for _, b := range []string{"mm", "lu", "cg", "bt"} {
			run(b)
		}
	case "":
	default:
		run(*bench)
	}

	if *table == 1 {
		cols, err := experiments.Table1(ctx, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable1(cols))
	} else if *table != 0 {
		log.Fatalf("unknown table %d", *table)
	}
}
