// Command smtsim is the generic simulator driver: it runs any benchmark
// kernel in any execution mode (or a synthetic stream pair) on a chosen
// machine configuration and dumps the full performance-counter bank —
// the workflow of the paper's monitoring-library measurements.
//
// Usage:
//
//	smtsim -kernel mm -mode tlp-pfetch -size 64
//	smtsim -kernel cg -mode serial
//	smtsim -stream fadd,fmul -ilp 6
//	smtsim -program worker.uasm,helper.uasm      # assembled µop programs
//	smtsim -program demo.uasm -trace 40          # plus a pipeline timeline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"smtexplore/internal/uasm"

	"smtexplore/internal/core"
	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smtsim: ")
	kernel := flag.String("kernel", "", "benchmark kernel: mm, lu, cg or bt")
	mode := flag.String("mode", "serial", "execution mode: serial, tlp-fine, tlp-coarse, tlp-pfetch, tlp-pfetch+work")
	size := flag.Int("size", 0, "problem size (MM/LU matrix dimension; 0 = kernel default)")
	stream := flag.String("stream", "", "comma-separated stream kinds to co-run instead of a kernel (e.g. fadd,fmul)")
	ilp := flag.Int("ilp", 6, "ILP degree for streams: 1, 3 or 6")
	window := flag.Uint64("cycles", experiments.StreamWindowCycles, "cycle budget for stream runs")
	program := flag.String("program", "", "comma-separated µop-assembly files to run (1 per context)")
	traceN := flag.Int("trace", 0, "show a pipeline timeline of the last N retired µops")
	flag.Parse()

	switch {
	case *program != "":
		runPrograms(*program, *window, *traceN)
	case *stream != "":
		runStreams(*stream, *ilp, *window)
	case *kernel != "":
		runKernel(*kernel, *mode, *size)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runPrograms assembles and co-runs µop-assembly files.
func runPrograms(list string, window uint64, traceN int) {
	paths := strings.Split(list, ",")
	if len(paths) < 1 || len(paths) > 2 {
		log.Fatalf("want 1 or 2 program files, got %d", len(paths))
	}
	machine := smt.New(core.StreamMachine())
	var tracer *smt.Tracer
	if traceN > 0 {
		tracer = smt.NewTracer(traceN)
		tracer.Attach(machine)
	}
	for i, path := range paths {
		src, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			log.Fatal(err)
		}
		p, err := uasm.Parse(string(src))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		machine.LoadProgram(i, p)
	}
	res, err := machine.Run(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("programs %s: %d cycles, completed=%v\n\n", list, machine.Cycle(), res.Completed)
	dump(machine)
	if tracer != nil {
		fmt.Printf("\npipeline timeline (last %d retired µops; A alloc, I issue, C complete, R retire):\n", traceN)
		fmt.Print(tracer.Timeline(0, machine.Cycle()+1, 64))
		st := tracer.Stats()
		fmt.Printf("\nstage averages over %d µops: queue %.1f, execute %.1f, commit-wait %.1f cycles\n",
			st.Count, st.AvgQueue, st.AvgExecute, st.AvgCommit)
	}
}

func parseMode(s string) (kernels.Mode, error) {
	for _, m := range kernels.AllModes() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func parseBenchmark(s string) (core.Benchmark, error) {
	switch s {
	case "mm":
		return core.BenchmarkMM, nil
	case "lu":
		return core.BenchmarkLU, nil
	case "cg":
		return core.BenchmarkCG, nil
	case "bt":
		return core.BenchmarkBT, nil
	}
	return 0, fmt.Errorf("unknown kernel %q", s)
}

func parseKind(s string) (streams.Kind, error) {
	for _, k := range streams.All() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown stream %q", s)
}

func runKernel(kernel, modeName string, size int) {
	b, err := parseBenchmark(kernel)
	if err != nil {
		log.Fatal(err)
	}
	m, err := parseMode(modeName)
	if err != nil {
		log.Fatal(err)
	}
	if size == 0 && (b == core.BenchmarkMM || b == core.BenchmarkLU) {
		size = 64
	}
	builder, err := core.NewBuilder(b, size)
	if err != nil {
		log.Fatal(err)
	}
	progs, err := builder.Programs(m)
	if err != nil {
		log.Fatal(err)
	}
	machine := smt.New(core.KernelMachine())
	machine.LoadProgram(kernels.WorkerTid, progs[0])
	if progs[1] != nil {
		machine.LoadProgram(kernels.HelperTid, progs[1])
	}
	res, err := machine.Run(8_000_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s / %s (size %d): %d cycles, completed=%v\n\n",
		kernel, modeName, size, machine.Cycle(), res.Completed)
	dump(machine)
}

func runStreams(list string, ilp int, window uint64) {
	parts := strings.Split(list, ",")
	if len(parts) < 1 || len(parts) > 2 {
		log.Fatalf("want 1 or 2 streams, got %d", len(parts))
	}
	machine := smt.New(core.StreamMachine())
	for i, p := range parts {
		k, err := parseKind(strings.TrimSpace(p))
		if err != nil {
			log.Fatal(err)
		}
		sp := streams.Spec{Kind: k, ILP: streams.ILP(ilp), Base: streams.DisjointBase(i)}
		if err := sp.Validate(); err != nil {
			log.Fatal(err)
		}
		machine.LoadProgram(i, streams.Build(sp))
	}
	if _, err := machine.Run(window); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streams %s at ILP %d, %d-cycle window\n\n", list, ilp, window)
	dump(machine)
}

func dump(m *smt.Machine) {
	fmt.Print(m.Counters().Snapshot().Format())
	for tid := 0; tid < smt.NumContexts; tid++ {
		ts := m.Hierarchy().Thread(tid)
		if ts.Accesses == 0 {
			continue
		}
		fmt.Printf("\ncpu%d memory: %d accesses, %d L1 misses, %d L2 misses (%d reads)\n",
			tid, ts.Accesses, ts.L1Misses, ts.L2Misses, ts.L2ReadMisses)
		c := m.Counters()
		instr := c.Get(perfmon.InstrRetired, tid)
		if cyc := c.Get(perfmon.Cycles, tid); cyc > 0 && instr > 0 {
			fmt.Printf("cpu%d CPI: %.3f (IPC %.2f)\n", tid,
				float64(cyc)/float64(instr), float64(instr)/float64(cyc))
		}
	}
}
