// Command smtsim is the generic simulator driver: it runs any benchmark
// kernel in any execution mode (or a synthetic stream pair, or assembled
// µop programs) on a chosen machine configuration and dumps the full
// performance-counter bank — the workflow of the paper's
// monitoring-library measurements.
//
// Usage:
//
//	smtsim -kernel mm -mode tlp-pfetch -size 64
//	smtsim -kernel cg -mode serial
//	smtsim -stream fadd,fmul -ilp 6
//	smtsim -program worker.uasm,helper.uasm      # assembled µop programs
//	smtsim -program demo.uasm -timeline 40       # plus a pipeline timeline
//
// Observability exports (any workload):
//
//	smtsim -stream fadd,iload -trace out.json        # Chrome/Perfetto trace
//	smtsim -kernel mm -mode tlp-fine -occupancy occ.csv
//	smtsim -kernel mm -mode serial -metrics m.json   # counter bank snapshot
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"smtexplore/internal/uasm"

	"smtexplore/internal/core"
	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
	"smtexplore/internal/obs"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("smtsim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the driver body, separated from main so tests can exercise the
// full flag-to-file pipeline in-process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smtsim", flag.ContinueOnError)
	kernel := fs.String("kernel", "", "benchmark kernel: mm, lu, cg or bt")
	mode := fs.String("mode", "serial", "execution mode: serial, tlp-fine, tlp-coarse, tlp-pfetch, tlp-pfetch+work")
	size := fs.Int("size", 0, "problem size (MM/LU matrix dimension; 0 = kernel default)")
	stream := fs.String("stream", "", "comma-separated stream kinds to co-run instead of a kernel (e.g. fadd,fmul)")
	ilp := fs.Int("ilp", 6, "ILP degree for streams: 1, 3 or 6")
	window := fs.Uint64("cycles", experiments.StreamWindowCycles, "cycle budget for stream runs")
	program := fs.String("program", "", "comma-separated µop-assembly files to run (1 per context)")
	timelineN := fs.Int("timeline", 0, "show a pipeline timeline of the last N retired µops")
	ov := newObserverFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the flag package already reported the problem
	}

	switch {
	case *program != "":
		return runPrograms(out, ov, *program, *window, *timelineN)
	case *stream != "":
		return runStreams(out, ov, *stream, *ilp, *window)
	case *kernel != "":
		return runKernel(out, ov, *kernel, *mode, *size)
	default:
		fmt.Fprintln(os.Stderr, "smtsim: nothing to run: pass -kernel, -stream or -program")
		fs.Usage()
		return errUsage
	}
}

// observer bundles the optional observability exports behind their flags:
// a pipeline tracer (Chrome trace-event JSON), a per-cycle occupancy
// sampler (CSV, or JSON for .json paths) and a structured metrics
// snapshot. Attach before running, flush after.
type observer struct {
	tracePath   string
	occPath     string
	metricsPath string
	sampleEvery uint64
	traceMax    int

	tracer  *obs.Tracer
	sampler *obs.Sampler
	started time.Time
}

func newObserverFlags(fs *flag.FlagSet) *observer {
	ov := &observer{}
	fs.StringVar(&ov.tracePath, "trace", "", "write a Chrome/Perfetto trace-event JSON file of the pipeline")
	fs.StringVar(&ov.occPath, "occupancy", "", "write the occupancy time series (CSV, or JSON if the path ends in .json)")
	fs.StringVar(&ov.metricsPath, "metrics", "", "write a structured JSON snapshot of all counters")
	fs.Uint64Var(&ov.sampleEvery, "sample", 128, "occupancy sampling period in cycles")
	fs.IntVar(&ov.traceMax, "trace-max", obs.DefaultTracerMax, "retain at most this many newest trace spans")
	return ov
}

func (ov *observer) active() bool {
	return ov.tracePath != "" || ov.occPath != "" || ov.metricsPath != ""
}

func (ov *observer) attach(m *smt.Machine) {
	ov.started = time.Now()
	if ov.tracePath != "" {
		ov.tracer = obs.NewTracer(obs.TracerConfig{Max: ov.traceMax})
		ov.tracer.Attach(m)
	}
	if ov.occPath != "" || ov.tracePath != "" {
		ov.sampler = obs.NewSampler(obs.SamplerConfig{Every: ov.sampleEvery})
		ov.sampler.Attach(m)
	}
}

// flush writes every requested export. Call once, after the run.
func (ov *observer) flush(m *smt.Machine, label string, completed bool) error {
	wall := time.Since(ov.started)
	if ov.sampler != nil {
		ov.sampler.Finish()
	}
	if ov.tracePath != "" {
		err := writeFile(ov.tracePath, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, ov.tracer.Spans(), ov.sampler.Samples())
		})
		if err != nil {
			return err
		}
	}
	if ov.occPath != "" {
		err := writeFile(ov.occPath, func(w io.Writer) error {
			if strings.HasSuffix(ov.occPath, ".json") {
				return ov.sampler.WriteJSON(w)
			}
			return ov.sampler.WriteCSV(w)
		})
		if err != nil {
			return err
		}
	}
	if ov.metricsPath != "" {
		x := obs.CollectMetrics(m, label, completed)
		x.Put("wall_seconds", wall.Seconds())
		if ov.tracer != nil {
			x.Put("trace_spans", len(ov.tracer.Spans()))
			x.Put("trace_spans_dropped", ov.tracer.Dropped())
		}
		if err := writeFile(ov.metricsPath, x.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runPrograms assembles and co-runs µop-assembly files.
func runPrograms(out io.Writer, ov *observer, list string, window uint64, timelineN int) error {
	paths := strings.Split(list, ",")
	if len(paths) < 1 || len(paths) > 2 {
		return fmt.Errorf("want 1 or 2 program files, got %d", len(paths))
	}
	machine := smt.New(core.StreamMachine())
	defer machine.Close()
	var tracer *smt.Tracer
	if timelineN > 0 {
		tracer = smt.NewTracer(timelineN)
		tracer.Attach(machine)
	}
	ov.attach(machine)
	for i, path := range paths {
		src, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		p, err := uasm.Parse(string(src))
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		machine.LoadProgram(i, p)
	}
	res, err := machine.Run(window)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "programs %s: %d cycles, completed=%v\n\n", list, machine.Cycle(), res.Completed)
	dump(out, machine)
	if tracer != nil {
		fmt.Fprintf(out, "\npipeline timeline (last %d retired µops; A alloc, I issue, C complete, R retire):\n", timelineN)
		fmt.Fprint(out, tracer.Timeline(0, machine.Cycle()+1, 64))
		st := tracer.Stats()
		fmt.Fprintf(out, "\nstage averages over %d µops: queue %.1f, execute %.1f, commit-wait %.1f cycles\n",
			st.Count, st.AvgQueue, st.AvgExecute, st.AvgCommit)
	}
	return ov.flush(machine, "program:"+list, res.Completed)
}

func parseMode(s string) (kernels.Mode, error) {
	for _, m := range kernels.AllModes() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func parseBenchmark(s string) (core.Benchmark, error) {
	switch s {
	case "mm":
		return core.BenchmarkMM, nil
	case "lu":
		return core.BenchmarkLU, nil
	case "cg":
		return core.BenchmarkCG, nil
	case "bt":
		return core.BenchmarkBT, nil
	}
	return 0, fmt.Errorf("unknown kernel %q", s)
}

func parseKind(s string) (streams.Kind, error) {
	for _, k := range streams.All() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown stream %q", s)
}

func runKernel(out io.Writer, ov *observer, kernel, modeName string, size int) error {
	b, err := parseBenchmark(kernel)
	if err != nil {
		return err
	}
	m, err := parseMode(modeName)
	if err != nil {
		return err
	}
	if size == 0 && (b == core.BenchmarkMM || b == core.BenchmarkLU) {
		size = 64
	}
	builder, err := core.NewBuilder(b, size)
	if err != nil {
		return err
	}
	progs, err := builder.Programs(m)
	if err != nil {
		return err
	}
	machine := smt.New(core.KernelMachine())
	defer machine.Close()
	ov.attach(machine)
	machine.LoadProgram(kernels.WorkerTid, progs[0])
	if progs[1] != nil {
		machine.LoadProgram(kernels.HelperTid, progs[1])
	}
	res, err := machine.Run(8_000_000_000)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s / %s (size %d): %d cycles, completed=%v\n\n",
		kernel, modeName, size, machine.Cycle(), res.Completed)
	dump(out, machine)
	return ov.flush(machine, fmt.Sprintf("%s/%s/%d", kernel, modeName, size), res.Completed)
}

func runStreams(out io.Writer, ov *observer, list string, ilp int, window uint64) error {
	parts := strings.Split(list, ",")
	if len(parts) < 1 || len(parts) > 2 {
		return fmt.Errorf("want 1 or 2 streams, got %d", len(parts))
	}
	machine := smt.New(core.StreamMachine())
	defer machine.Close()
	ov.attach(machine)
	for i, p := range parts {
		k, err := parseKind(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		sp := streams.Spec{Kind: k, ILP: streams.ILP(ilp), Base: streams.DisjointBase(i)}
		if err := sp.Validate(); err != nil {
			return err
		}
		machine.LoadProgram(i, streams.Build(sp))
	}
	if _, err := machine.Run(window); err != nil {
		return err
	}
	fmt.Fprintf(out, "streams %s at ILP %d, %d-cycle window\n\n", list, ilp, window)
	dump(out, machine)
	return ov.flush(machine, fmt.Sprintf("stream:%s/ilp%d", list, ilp), false)
}

func dump(out io.Writer, m *smt.Machine) {
	fmt.Fprint(out, m.Counters().Snapshot().Format())
	for tid := 0; tid < smt.NumContexts; tid++ {
		ts := m.Hierarchy().Thread(tid)
		if ts.Accesses == 0 {
			continue
		}
		fmt.Fprintf(out, "\ncpu%d memory: %d accesses, %d L1 misses, %d L2 misses (%d reads)\n",
			tid, ts.Accesses, ts.L1Misses, ts.L2Misses, ts.L2ReadMisses)
		c := m.Counters()
		instr := c.Get(perfmon.InstrRetired, tid)
		if cyc := c.Get(perfmon.Cycles, tid); cyc > 0 && instr > 0 {
			fmt.Fprintf(out, "cpu%d CPI: %.3f (IPC %.2f)\n", tid,
				float64(cyc)/float64(instr), float64(instr)/float64(cyc))
		}
	}
}
