package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOnce drives the full flag pipeline in-process and returns the file
// written to out.
func runOnce(t *testing.T, extra []string, outName string) []byte {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, outName)
	args := append([]string{}, extra...)
	args = append(args, path)
	if err := run(args, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

var streamArgs = []string{"-stream", "fadd,iload", "-cycles", "3000"}

// TestTraceFlagEmitsValidChromeJSON checks the -trace export is a
// well-formed Chrome trace-event document: object form, known phases
// only, required fields on every event, at least one slice per context.
func TestTraceFlagEmitsValidChromeJSON(t *testing.T) {
	data := runOnce(t, append(streamArgs, "-trace"), "out.json")

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *uint64        `json:"ts"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	slices := map[int]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing ts/pid/tid", i)
		}
		switch ev.Ph {
		case "X":
			slices[*ev.Pid]++
			if ev.Name == "" {
				t.Fatalf("slice %d unnamed", i)
			}
		case "C", "M":
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	for _, pid := range []int{0, 1} {
		if slices[pid] == 0 {
			t.Errorf("no pipeline slices for cpu%d", pid)
		}
	}
}

// TestTraceFlagDeterministic reruns the identical workload and demands
// byte-identical trace files.
func TestTraceFlagDeterministic(t *testing.T) {
	a := runOnce(t, append(streamArgs, "-trace"), "a.json")
	b := runOnce(t, append(streamArgs, "-trace"), "b.json")
	if !bytes.Equal(a, b) {
		t.Fatal("identical invocations produced different trace files")
	}
}

func TestOccupancyFlagCSV(t *testing.T) {
	data := runOnce(t, append(streamArgs, "-sample", "64", "-occupancy"), "occ.csv")
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("occupancy CSV has %d lines, want header + samples", len(lines))
	}
	if !strings.HasPrefix(lines[0], "cycle,window,") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	cols := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Fatalf("row %d column count differs from header", i+1)
		}
	}
}

func TestOccupancyFlagJSON(t *testing.T) {
	data := runOnce(t, append(streamArgs, "-occupancy"), "occ.json")
	var doc struct {
		Schema  string            `json:"schema"`
		Samples []json.RawMessage `json:"samples"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "smtexplore/occupancy/v1" || len(doc.Samples) == 0 {
		t.Fatalf("schema %q with %d samples", doc.Schema, len(doc.Samples))
	}
}

func TestMetricsFlag(t *testing.T) {
	data := runOnce(t, append(streamArgs, "-metrics"), "m.json")
	var doc struct {
		Schema   string `json:"schema"`
		Label    string `json:"label"`
		Counters []struct {
			Event string `json:"event"`
			Total uint64 `json:"total"`
		} `json:"counters"`
		Meta []struct {
			Key string `json:"key"`
		} `json:"meta"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "smtexplore/metrics/v1" {
		t.Fatalf("schema %q", doc.Schema)
	}
	if !strings.Contains(doc.Label, "fadd,iload") {
		t.Fatalf("label %q does not identify the workload", doc.Label)
	}
	events := map[string]uint64{}
	for _, c := range doc.Counters {
		events[c.Event] = c.Total
	}
	if events["uops_retired"] == 0 || events["cycles"] == 0 {
		t.Fatalf("core counters missing or zero: %v", events)
	}
	keys := map[string]bool{}
	for _, m := range doc.Meta {
		keys[m.Key] = true
	}
	if !keys["wall_seconds"] {
		t.Fatalf("meta lacks wall_seconds: %v", keys)
	}
}

// TestKernelModeObserved exercises the kernel path with all three exports
// at once on a small matrix multiply.
func TestKernelModeObserved(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")
	occ := filepath.Join(dir, "o.csv")
	metrics := filepath.Join(dir, "m.json")
	args := []string{"-kernel", "mm", "-mode", "tlp-fine", "-size", "16",
		"-trace", trace, "-occupancy", occ, "-metrics", metrics}
	if err := run(args, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{trace, occ, metrics} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("export %s missing or empty (err=%v)", p, err)
		}
	}
	var doc struct {
		Run struct {
			Completed bool `json:"completed"`
		} `json:"run"`
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Run.Completed {
		t.Fatal("mm/tlp-fine run did not complete")
	}
}
