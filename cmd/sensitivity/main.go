// Command sensitivity sweeps the simulated processor's design parameters
// for a chosen benchmark and execution mode, showing which
// microarchitectural limits bind — the "performance limits" exploration
// of the paper's title, with the knobs silicon never exposes.
//
// Usage:
//
//	sensitivity                       # MM tlp-coarse under the default sweep
//	sensitivity -kernel cg -mode tlp-pfetch
package main

import (
	"flag"
	"fmt"
	"log"

	"smtexplore/internal/core"
	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sensitivity: ")
	kernel := flag.String("kernel", "mm", "benchmark: mm, lu, cg, bt")
	modeName := flag.String("mode", "tlp-coarse", "execution mode")
	size := flag.Int("size", 64, "problem size for mm/lu (ignored otherwise)")
	flag.Parse()

	var b core.Benchmark
	switch *kernel {
	case "mm":
		b = core.BenchmarkMM
	case "lu":
		b = core.BenchmarkLU
	case "cg":
		b, *size = core.BenchmarkCG, 0
	case "bt":
		b, *size = core.BenchmarkBT, 0
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}
	var mode kernels.Mode
	found := false
	for _, m := range kernels.AllModes() {
		if m.String() == *modeName {
			mode, found = m, true
		}
	}
	if !found {
		log.Fatalf("unknown mode %q", *modeName)
	}

	points, err := experiments.Sensitivity(func() (experiments.Builder, error) {
		return core.NewBuilder(b, *size)
	}, mode, experiments.DefaultVariants())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatSensitivity(
		fmt.Sprintf("µarchitecture sensitivity — %s / %s", *kernel, mode), points))
}
