// Command sensitivity sweeps the simulated processor's design parameters
// for a chosen benchmark and execution mode, showing which
// microarchitectural limits bind — the "performance limits" exploration
// of the paper's title, with the knobs silicon never exposes.
//
// Usage:
//
//	sensitivity                       # MM tlp-coarse under the default sweep
//	sensitivity -kernel cg -mode tlp-pfetch
//	sensitivity -workers 4            # bound the concurrent sweep points
//
// Sweep points fan out over -workers (default: all cores). Output is
// byte-identical to -workers 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"smtexplore/internal/core"
	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sensitivity: ")
	kernel := flag.String("kernel", "mm", "benchmark: mm, lu, cg, bt")
	modeName := flag.String("mode", "tlp-coarse", "execution mode")
	size := flag.Int("size", 64, "problem size for mm/lu (ignored otherwise)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep points (must be >= 1)")
	flag.Parse()
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "sensitivity: invalid -workers %d (must be >= 1)\n", *workers)
		flag.Usage()
		os.Exit(2)
	}

	var b core.Benchmark
	switch *kernel {
	case "mm":
		b = core.BenchmarkMM
	case "lu":
		b = core.BenchmarkLU
	case "cg":
		b, *size = core.BenchmarkCG, 0
	case "bt":
		b, *size = core.BenchmarkBT, 0
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}
	var mode kernels.Mode
	found := false
	for _, m := range kernels.AllModes() {
		if m.String() == *modeName {
			mode, found = m, true
		}
	}
	if !found {
		log.Fatalf("unknown mode %q", *modeName)
	}

	opt := experiments.Options{Workers: *workers}
	points, err := experiments.Sensitivity(context.Background(), opt, func() (experiments.Builder, error) {
		return core.NewBuilder(b, *size)
	}, mode, experiments.DefaultVariants())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatSensitivity(
		fmt.Sprintf("µarchitecture sensitivity — %s / %s", *kernel, mode), points))
}
