// Command sensitivity sweeps the simulated processor's design parameters
// for a chosen benchmark and execution mode, showing which
// microarchitectural limits bind — the "performance limits" exploration
// of the paper's title, with the knobs silicon never exposes.
//
// Usage:
//
//	sensitivity                       # MM tlp-coarse under the default sweep
//	sensitivity -kernel cg -mode tlp-pfetch
//	sensitivity -workers 4            # bound the concurrent sweep points
//
// Sweep points fan out over -workers (default: all cores). Output is
// byte-identical to -workers 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"smtexplore/internal/core"
	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("sensitivity: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sensitivity", flag.ContinueOnError)
	kernel := fs.String("kernel", "mm", "benchmark: mm, lu, cg, bt")
	modeName := fs.String("mode", "tlp-coarse", "execution mode")
	size := fs.Int("size", 64, "problem size for mm/lu (ignored otherwise)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep points (must be >= 1)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the flag package already reported the problem
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "sensitivity: invalid -workers %d (must be >= 1)\n", *workers)
		fs.Usage()
		return errUsage
	}

	var b core.Benchmark
	switch *kernel {
	case "mm":
		b = core.BenchmarkMM
	case "lu":
		b = core.BenchmarkLU
	case "cg":
		b, *size = core.BenchmarkCG, 0
	case "bt":
		b, *size = core.BenchmarkBT, 0
	default:
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		fs.Usage()
		return errUsage
	}
	var mode kernels.Mode
	found := false
	for _, m := range kernels.AllModes() {
		if m.String() == *modeName {
			mode, found = m, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		fs.Usage()
		return errUsage
	}

	opt := experiments.Options{Workers: *workers}
	points, err := experiments.Sensitivity(context.Background(), opt, func() (experiments.Builder, error) {
		return core.NewBuilder(b, *size)
	}, mode, experiments.DefaultVariants())
	if err != nil {
		return err
	}
	fmt.Fprint(out, experiments.FormatSensitivity(
		fmt.Sprintf("µarchitecture sensitivity — %s / %s", *kernel, mode), points))
	return nil
}
