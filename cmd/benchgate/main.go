// Command benchgate records and gates Go benchmark results without any
// external tooling. It parses the standard `go test -bench` text output,
// reduces repeated runs per benchmark (min time/op, median otherwise),
// and either
// writes a committed JSON record or compares a fresh run against one and
// fails on regression.
//
// Usage:
//
//	go test -bench ... | benchgate record -out BENCH_0006.json -commit $(git rev-parse HEAD)
//	go test -bench ... | benchgate gate -baseline BENCH_0006.json [-threshold 0.10]
//
// The gate fails (exit 1) when any benchmark present in both the
// baseline and the fresh run is more than threshold slower in time/op,
// or allocates more per op at all: steady-state zero allocation is a
// hard property of the simulator core, not a statistic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"smtexplore/internal/benchgate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "gate":
		err = gate(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == benchgate.ErrRegression {
			os.Exit(1)
		}
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchgate record -out FILE [-commit SHA] [-note TEXT]  < bench-output
  benchgate gate -baseline FILE [-threshold 0.10]        < bench-output`)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "output JSON file (default stdout)")
	commit := fs.String("commit", "", "commit hash to stamp")
	note := fs.String("note", "", "free-form annotation")
	fs.Parse(args)

	runs, err := benchgate.Parse(os.Stdin)
	if err != nil {
		return err
	}
	rec := benchgate.Record{
		Schema:     benchgate.SchemaV1,
		Commit:     *commit,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Note:       *note,
		Benchmarks: benchgate.Reduce(runs),
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func gate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	baseline := fs.String("baseline", "", "baseline JSON record (required)")
	threshold := fs.Float64("threshold", 0.10, "max fractional time/op regression")
	fs.Parse(args)
	if *baseline == "" {
		return fmt.Errorf("gate: -baseline is required")
	}

	base, err := loadRecord(*baseline)
	if err != nil {
		return err
	}
	runs, err := benchgate.Parse(os.Stdin)
	if err != nil {
		return err
	}
	fresh := benchgate.Reduce(runs)
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	report := benchgate.Compare(base.Benchmarks, fresh, *threshold)
	fmt.Print(report.Format())
	if report.Failed() {
		return benchgate.ErrRegression
	}
	return nil
}

func loadRecord(path string) (*benchgate.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var rec benchgate.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != benchgate.SchemaV1 {
		return nil, fmt.Errorf("%s: unknown schema %q", path, rec.Schema)
	}
	return &rec, nil
}
