// Command streams regenerates the synthetic-stream experiments of
// Section 4 of the paper: Figure 1 (average CPI per stream under TLP×ILP
// execution modes) and Figure 2 (pairwise co-execution slowdown factors).
//
// Usage:
//
//	streams -fig 1          # Figure 1
//	streams -fig 2a         # FP × FP slowdown matrix
//	streams -fig 2b         # int × int slowdown matrix
//	streams -fig 2c         # fp-arith × int-arith matrix
//	streams -fig all        # everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"smtexplore/internal/experiments"
	"smtexplore/internal/streams"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streams: ")
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2a, 2b, 2c or all")
	full := flag.Bool("full", false, "Figure 1 over all stream kinds, not just the paper's selection")
	flag.Parse()

	mcfg := experiments.StreamMachineConfig()
	run := func(name string) {
		switch name {
		case "1":
			kinds := experiments.Fig1Kinds()
			if *full {
				kinds = streams.All()
			}
			rows, err := experiments.Fig1(mcfg, kinds)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFig1(rows))
		case "2a":
			cells, err := experiments.Fig2a(mcfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFig2("Figure 2(a) — floating-point streams", cells))
		case "2b":
			cells, err := experiments.Fig2b(mcfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFig2("Figure 2(b) — integer streams", cells))
		case "2c":
			cells, err := experiments.Fig2c(mcfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFig2("Figure 2(c) — mixed fp×int arithmetic", cells))
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		fmt.Println()
	}

	if *fig == "all" {
		for _, f := range []string{"1", "2a", "2b", "2c"} {
			run(f)
		}
		return
	}
	run(*fig)
}
