// Command streams regenerates the synthetic-stream experiments of
// Section 4 of the paper: Figure 1 (average CPI per stream under TLP×ILP
// execution modes) and Figure 2 (pairwise co-execution slowdown factors).
//
// Usage:
//
//	streams -fig 1          # Figure 1
//	streams -fig 2a         # FP × FP slowdown matrix
//	streams -fig 2b         # int × int slowdown matrix
//	streams -fig 2c         # fp-arith × int-arith matrix
//	streams -fig all        # everything
//	streams -workers 4      # bound the concurrent simulation cells
//	streams -fig 1 -observe obs/ -observe-match fadd
//
// Simulation cells fan out over -workers (default: all cores); one
// result cache spans the invocation, so baselines shared between
// figures simulate once. Output is byte-identical to -workers 1. With
// -observe, matching cells additionally write pipeline traces, occupancy
// series and metrics snapshots into the directory (those cells bypass
// the cache — a cache hit has nothing to trace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
	"smtexplore/internal/store"
	"smtexplore/internal/streams"
)

// errUsage marks a command-line error already reported to stderr; the
// process exits with the conventional usage status 2.
var errUsage = errors.New("usage")

func main() {
	log.SetFlags(0)
	log.SetPrefix("streams: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// observeFlags assembles the optional artifact sink shared by the
// experiment CLIs.
func observeFlags(fs *flag.FlagSet) func() *experiments.Observe {
	dir := fs.String("observe", "", "write per-cell trace/occupancy/metrics artifacts into this directory")
	match := fs.String("observe-match", "", "observe only cells whose label contains this substring")
	return func() *experiments.Observe {
		if *dir == "" {
			return nil
		}
		ob := &experiments.Observe{Dir: *dir}
		if *match != "" {
			ob.Match = experiments.MatchSubstring(*match)
		}
		return ob
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("streams", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 1, 2a, 2b, 2c or all")
	full := fs.Bool("full", false, "Figure 1 over all stream kinds, not just the paper's selection")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells (must be >= 1)")
	storeDir := fs.String("store", "", "disk-backed result store directory, shared with smtd and the other CLIs")
	observe := observeFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the flag package already reported the problem
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "streams: invalid -workers %d (must be >= 1)\n", *workers)
		fs.Usage()
		return errUsage
	}
	cache := runner.NewCache()
	if *storeDir != "" {
		st, err := store.Open(*storeDir, 0)
		if err != nil {
			return err
		}
		cache.WithTier(st)
	}

	ctx := context.Background()
	opt := experiments.Options{Workers: *workers, Cache: cache, Observe: observe()}
	mcfg := experiments.StreamMachineConfig()
	runFig := func(name string) error {
		switch name {
		case "1":
			kinds := experiments.Fig1Kinds()
			if *full {
				kinds = streams.All()
			}
			rows, err := experiments.Fig1(ctx, opt, mcfg, kinds)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatFig1(rows))
		case "2a":
			cells, err := experiments.Fig2a(ctx, opt, mcfg)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatFig2("Figure 2(a) — floating-point streams", cells))
		case "2b":
			cells, err := experiments.Fig2b(ctx, opt, mcfg)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatFig2("Figure 2(b) — integer streams", cells))
		case "2c":
			cells, err := experiments.Fig2c(ctx, opt, mcfg)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatFig2("Figure 2(c) — mixed fp×int arithmetic", cells))
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}

	if *fig == "all" {
		for _, f := range []string{"1", "2a", "2b", "2c"} {
			if err := runFig(f); err != nil {
				return err
			}
		}
		return nil
	}
	return runFig(*fig)
}
