// Command streams regenerates the synthetic-stream experiments of
// Section 4 of the paper: Figure 1 (average CPI per stream under TLP×ILP
// execution modes) and Figure 2 (pairwise co-execution slowdown factors).
//
// Usage:
//
//	streams -fig 1          # Figure 1
//	streams -fig 2a         # FP × FP slowdown matrix
//	streams -fig 2b         # int × int slowdown matrix
//	streams -fig 2c         # fp-arith × int-arith matrix
//	streams -fig all        # everything
//	streams -workers 4      # bound the concurrent simulation cells
//
// Simulation cells fan out over -workers (default: all cores); one
// result cache spans the invocation, so baselines shared between
// figures simulate once. Output is byte-identical to -workers 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
	"smtexplore/internal/streams"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streams: ")
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2a, 2b, 2c or all")
	full := flag.Bool("full", false, "Figure 1 over all stream kinds, not just the paper's selection")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation cells (must be >= 1)")
	flag.Parse()
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "streams: invalid -workers %d (must be >= 1)\n", *workers)
		flag.Usage()
		os.Exit(2)
	}

	ctx := context.Background()
	opt := experiments.Options{Workers: *workers, Cache: runner.NewCache()}
	mcfg := experiments.StreamMachineConfig()
	run := func(name string) {
		switch name {
		case "1":
			kinds := experiments.Fig1Kinds()
			if *full {
				kinds = streams.All()
			}
			rows, err := experiments.Fig1(ctx, opt, mcfg, kinds)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFig1(rows))
		case "2a":
			cells, err := experiments.Fig2a(ctx, opt, mcfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFig2("Figure 2(a) — floating-point streams", cells))
		case "2b":
			cells, err := experiments.Fig2b(ctx, opt, mcfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFig2("Figure 2(b) — integer streams", cells))
		case "2c":
			cells, err := experiments.Fig2c(ctx, opt, mcfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFig2("Figure 2(c) — mixed fp×int arithmetic", cells))
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		fmt.Println()
	}

	if *fig == "all" {
		for _, f := range []string{"1", "2a", "2b", "2c"} {
			run(f)
		}
		return
	}
	run(*fig)
}
