// Command loadgen drives an smtd daemon or cluster coordinator with an
// open-loop multi-tenant load scenario and reports per-tenant SLO
// statistics: latency percentiles, goodput, shed counts and a fairness
// ratio. Chaos phases (SIGKILL via pidfile, fault-plan arming over
// POST /v1/faults) run on the scenario's timeline, so the same tool
// proves both isolation under contention and survival under failure.
//
// Against an HA coordinator pair, -addr takes both addresses
// ("a:1,b:2"): submissions retry across transport errors and follow
// X-Cluster-Leader redirects, so killing the active coordinator
// mid-run shows up as latency, not failed jobs. The post-run report
// captures the pair's failover latency and adoption counters.
//
// Usage:
//
//	loadgen -scenario s.json -addr 127.0.0.1:8377 -out report.json
//	loadgen -scenario s.json -addr 127.0.0.1:8370,127.0.0.1:8371 ...
//	loadgen -scenario s.json -addr ... -baseline solo.json \
//	    -assert goodput-frac:light:0.8 -assert p99-factor:light:2.0
//
// Assertions (repeatable; any failure exits 1):
//
//	done-min:TENANT:N              at least N jobs done
//	no-failed:TENANT               zero failed jobs
//	shed-cause-min:TENANT:CAUSE:N  at least N sheds with CAUSE
//	goodput-frac:TENANT:F          goodput >= F x baseline's (needs -baseline)
//	p99-factor:TENANT:F            p99 <= F x baseline's (needs -baseline)
//
// The -bench-out flag additionally writes the report in the repo's
// smtexplore-bench/v1 shape so a load run can be committed as a
// BENCH_NNNN.json baseline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"

	"smtexplore/internal/loadgen"
	"smtexplore/internal/tenant"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		if errors.Is(err, errAssert) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}

// errAssert marks SLO assertion failures (exit 1, distinct from usage
// or runtime errors).
var errAssert = errors.New("assertions failed")

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	scenarioPath := fs.String("scenario", "", "scenario JSON file (required)")
	addr := fs.String("addr", "127.0.0.1:8377", "smtd or coordinator address; comma-separate an HA pair for failover")
	out := fs.String("out", "", "write the report JSON here (empty: stdout summary only)")
	benchOut := fs.String("bench-out", "", "write the report in smtexplore-bench/v1 shape here")
	baselinePath := fs.String("baseline", "", "baseline report JSON for relative assertions (a solo run)")
	seed := fs.Uint64("seed", 0, "override the scenario's seed (0: keep the scenario's)")
	duration := fs.Duration("duration", 0, "override the scenario's duration (0: keep the scenario's)")
	poll := fs.Duration("poll", 0, "job-completion poll interval (0: 50ms default)")
	var assertSpecs multiFlag
	fs.Var(&assertSpecs, "assert", "SLO assertion (repeatable; see package docs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenarioPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -scenario")
	}
	data, err := os.ReadFile(*scenarioPath)
	if err != nil {
		return err
	}
	sc, err := loadgen.ParseScenario(data)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *duration != 0 {
		sc.Duration = tenant.Duration(*duration)
	}
	var asserts []loadgen.Assertion
	for _, s := range assertSpecs {
		a, err := loadgen.ParseAssertion(s)
		if err != nil {
			return err
		}
		asserts = append(asserts, a)
	}
	var baseline *loadgen.Report
	if *baselinePath != "" {
		if baseline, err = loadgen.LoadReport(*baselinePath); err != nil {
			return err
		}
	}

	r := &loadgen.Runner{Target: *addr, Log: os.Stderr, PollEvery: *poll}
	rep, err := r.Run(ctx, sc)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if *out != "" {
		if err := writeJSONFile(*out, rep); err != nil {
			return err
		}
	}
	if *benchOut != "" {
		b, err := rep.BenchJSON(gitCommit())
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	if errs := rep.Check(asserts, baseline); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "loadgen: ASSERT FAIL:", e)
		}
		return errAssert
	}
	if len(asserts) > 0 {
		fmt.Printf("loadgen: all %d assertions passed\n", len(asserts))
	}
	return nil
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func writeJSONFile(path string, rep *loadgen.Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// gitCommit best-effort resolves HEAD for the bench-shape output.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
