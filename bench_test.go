package smtexplore_test

// One benchmark per table and figure of the paper's evaluation. Each
// b.N iteration regenerates the complete figure/table (these are
// macro-benchmarks; run with the default -benchtime or -benchtime=1x).
// Key series values are attached as custom metrics so regressions in the
// reproduced *shapes* — not just runtimes — are visible in benchmark
// diffs.

import (
	"context"
	"testing"
	"time"

	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
	"smtexplore/internal/profile"
	"smtexplore/internal/streams"
)

// bgCtx is the shared context of the figure benchmarks.
var bgCtx = context.Background()

// BenchmarkFig1StreamCPI regenerates Figure 1: average CPI of the paper's
// representative streams under the six TLP×ILP execution modes.
func BenchmarkFig1StreamCPI(b *testing.B) {
	var rows []experiments.Fig1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig1(bgCtx, experiments.DefaultOptions(), experiments.StreamMachineConfig(), experiments.Fig1Kinds())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Stream == streams.FAddS && r.ILP == streams.MaxILP && r.Threads == 1 {
			b.ReportMetric(r.CPI, "fadd-1thr-maxILP-CPI")
		}
		if r.Stream == streams.IAddS && r.ILP == streams.MaxILP && r.Threads == 2 {
			b.ReportMetric(r.CPI, "iadd-2thr-maxILP-CPI")
		}
	}
	// Cold-simulation throughput: every row of the figure is one
	// simulation cell (no result cache inside Fig1's own sweep).
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(len(rows)*b.N)/sec, "cells/s")
	}
}

// BenchmarkFig2FPPairs regenerates Figure 2(a): pairwise slowdown factors
// of the floating-point streams.
func BenchmarkFig2FPPairs(b *testing.B) {
	var cells []experiments.Fig2Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.Fig2a(bgCtx, experiments.DefaultOptions(), experiments.StreamMachineConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.Subject == streams.FDivS && c.Partner == streams.FDivS && c.ILP == streams.MaxILP {
			b.ReportMetric(c.Slowdown, "fdiv-x-fdiv-slowdown")
		}
		if c.Subject == streams.FAddS && c.Partner == streams.FMulS && c.ILP == streams.MaxILP {
			b.ReportMetric(c.Slowdown, "fadd-x-fmul-slowdown")
		}
	}
}

// BenchmarkFig2IntPairs regenerates Figure 2(b): the integer streams.
func BenchmarkFig2IntPairs(b *testing.B) {
	var cells []experiments.Fig2Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.Fig2b(bgCtx, experiments.DefaultOptions(), experiments.StreamMachineConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.Subject == streams.IAddS && c.Partner == streams.IAddS && c.ILP == streams.MaxILP {
			b.ReportMetric(c.Slowdown, "iadd-x-iadd-slowdown")
		}
	}
}

// BenchmarkFig2MixedPairs regenerates Figure 2(c): mixed integer and
// floating-point arithmetic pairs.
func BenchmarkFig2MixedPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2c(bgCtx, experiments.DefaultOptions(), experiments.StreamMachineConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// reportKernelShape attaches the figure's headline series as metrics: the
// per-mode execution-time factor relative to serial, and the SPR worker's
// miss reduction.
func reportKernelShape(b *testing.B, ms []experiments.KernelMetrics, label string) {
	b.Helper()
	serial, ok := experiments.SerialOf(ms, label)
	if !ok {
		b.Fatalf("no serial baseline for %s", label)
	}
	for _, m := range ms {
		if m.Label != label || m.Mode == kernels.Serial {
			continue
		}
		b.ReportMetric(experiments.Relative(m, serial), m.Mode.String()+"-vs-serial")
		if m.Mode == kernels.TLPPfetch && serial.L2ReadMissesWorker > 0 {
			red := 1 - float64(m.L2ReadMissesWorker)/float64(serial.L2ReadMissesWorker)
			b.ReportMetric(red, "pfetch-miss-reduction")
		}
	}
}

// BenchmarkFig3MM regenerates Figure 3: the Matrix Multiplication kernel
// across five execution modes and three scaled sizes.
func BenchmarkFig3MM(b *testing.B) {
	var ms []experiments.KernelMetrics
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiments.Fig3MM(bgCtx, experiments.DefaultOptions(), experiments.MMSizes())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportKernelShape(b, ms, "N=128")
}

// BenchmarkFig4LU regenerates Figure 4: the LU-decomposition kernel.
func BenchmarkFig4LU(b *testing.B) {
	var ms []experiments.KernelMetrics
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiments.Fig4LU(bgCtx, experiments.DefaultOptions(), experiments.LUSizes())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportKernelShape(b, ms, "N=128")
}

// BenchmarkFig5CG regenerates the CG panels of Figure 5.
func BenchmarkFig5CG(b *testing.B) {
	var ms []experiments.KernelMetrics
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiments.Fig5CG(bgCtx, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(ms) > 0 {
		reportKernelShape(b, ms, ms[0].Label)
	}
}

// BenchmarkFig5BT regenerates the BT panels of Figure 5 — the paper's one
// TLP speedup.
func BenchmarkFig5BT(b *testing.B) {
	var ms []experiments.KernelMetrics
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiments.Fig5BT(bgCtx, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(ms) > 0 {
		reportKernelShape(b, ms, ms[0].Label)
	}
}

// BenchmarkTable1Mix regenerates Table 1: the per-subunit dynamic
// instruction-mix breakdown of every kernel under serial, TLP and SPR
// execution.
func BenchmarkTable1Mix(b *testing.B) {
	var cols []experiments.Table1Column
	for i := 0; i < b.N; i++ {
		var err error
		cols, err = experiments.Table1(bgCtx, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cols {
		if c.Kernel == "MM" && c.Mode == "serial" {
			b.ReportMetric(c.Share[profile.RowLoad], "mm-serial-load-pct")
			b.ReportMetric(c.ALU0Share, "mm-serial-alu0-pct")
		}
	}
}

// BenchmarkAblationSync regenerates the §3.1 wait-primitive ablation.
func BenchmarkAblationSync(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblateSync(bgCtx, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Metrics.Cycles), r.Variant+"-cycles")
	}
}

// BenchmarkAblationSpan regenerates the §3.2 precomputation-span sweep.
func BenchmarkAblationSpan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateSpan(bgCtx, experiments.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPartition regenerates the §5.3 partitioning contrast.
func BenchmarkAblationPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblatePartition(bgCtx, experiments.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigRegenSpeedup regenerates Figure 2(a) twice — strictly
// serially (one worker, no cache) and with the default concurrent
// options — and reports the wall-clock speedup of the parallel+cached
// path. On an N-core machine the fan-out contributes up to ×N; the
// result cache contributes its hit savings even on one core.
func BenchmarkFigRegenSpeedup(b *testing.B) {
	run := func(opt experiments.Options) time.Duration {
		start := time.Now()
		if _, err := experiments.Fig2a(bgCtx, opt, experiments.StreamMachineConfig()); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		serial += run(experiments.Options{Workers: 1, Cache: nil})
		parallel += run(experiments.DefaultOptions())
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
}

// BenchmarkSelectiveHalt regenerates the §3.1 selective-halting two-pass
// methodology on LU's phase barriers.
func BenchmarkSelectiveHalt(b *testing.B) {
	var r experiments.SelectiveHaltResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.SelectiveHaltLU(bgCtx, experiments.DefaultOptions(), 64)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Baseline.Cycles), "all-spin-cycles")
	b.ReportMetric(float64(r.Planned.Cycles), "selective-halt-cycles")
}
