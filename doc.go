// Package smtexplore is a from-scratch reproduction of "Exploring the
// Performance Limits of Simultaneous Multithreading for Scientific Codes"
// (Athanasaki, Anastopoulos, Kourtis, Koziris — ICPP 2006).
//
// The paper measures, on a hyper-threaded Intel Xeon, how far thread-level
// parallelism (TLP) and speculative precomputation (SPR, helper-thread
// prefetching) can accelerate single scientific programs on a 2-way SMT
// processor — and finds that they mostly cannot. This module rebuilds the
// entire experimental apparatus in Go: a cycle-level simulator of the
// NetBurst-style SMT core (internal/smt) with its statically partitioned
// buffers, shared issue ports and cache hierarchy (internal/mem); the
// paper's synchronisation primitives — pause spin-loops, halt/IPI waits,
// sense-reversing barriers (internal/syncprim); the Section 4 synthetic
// instruction streams (internal/streams); the four benchmark kernels in
// every execution mode (internal/kernels/{mm,lu,cg,bt}); the
// performance-monitoring and Pin/Valgrind-style profiling substrates
// (internal/perfmon, internal/profile); and one experiment harness per
// figure and table of the evaluation (internal/experiments).
//
// The benchmarks in bench_test.go regenerate every figure and table:
//
//	go test -bench=. -benchmem .
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and paper→simulation substitution map, and
// EXPERIMENTS.md for measured-vs-paper comparisons.
package smtexplore
