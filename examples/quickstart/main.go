// Quickstart: co-execute two synthetic instruction streams on the
// simulated hyper-threaded processor and observe how they interact — the
// paper's Section 4 experiment in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smtexplore/internal/core"
	"smtexplore/internal/streams"
)

func main() {
	log.SetFlags(0)
	mcfg := core.StreamMachine()

	// An fadd stream and an fmul stream at maximum ILP: both want the
	// single FP execute unit on port 1, so co-execution hurts.
	fadd := streams.Spec{Kind: streams.FAddS, ILP: streams.MaxILP}
	fmul := streams.Spec{Kind: streams.FMulS, ILP: streams.MaxILP}

	res, err := core.CoExecuteWithBaseline(mcfg, fadd, fmul)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fadd × fmul at max ILP (shared FP port):")
	fmt.Printf("  fadd: CPI %.2f co-executing, %+.0f%% vs alone\n", res.CPI[0], res.Slowdown[0]*100)
	fmt.Printf("  fmul: CPI %.2f co-executing, %+.0f%% vs alone\n", res.CPI[1], res.Slowdown[1]*100)

	// The same pair at minimum ILP barely interacts: each stream's
	// dependence chains leave the port mostly idle.
	fadd.ILP, fmul.ILP = streams.MinILP, streams.MinILP
	res, err = core.CoExecuteWithBaseline(mcfg, fadd, fmul)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfadd × fmul at min ILP (latency-bound chains):")
	fmt.Printf("  fadd: CPI %.2f co-executing, %+.0f%% vs alone\n", res.CPI[0], res.Slowdown[0]*100)
	fmt.Printf("  fmul: CPI %.2f co-executing, %+.0f%% vs alone\n", res.CPI[1], res.Slowdown[1]*100)

	// Integer adds are front-end bound: two copies serialise (the
	// paper's "equivalent to serial execution").
	iadd := streams.Spec{Kind: streams.IAddS, ILP: streams.MaxILP}
	res, err = core.CoExecuteWithBaseline(mcfg, iadd, iadd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\niadd × iadd at max ILP (front-end bound):")
	fmt.Printf("  each copy: CPI %.2f, %+.0f%% vs alone\n", res.CPI[0], res.Slowdown[0]*100)
}
