// TLP work partitioning on the Matrix Multiplication kernel: contrast the
// paper's fine-grained partitioning (consecutive C elements alternate
// between the threads, sharing cache lines) against the coarse-grained one
// (whole C tiles alternate, keeping the threads in disjoint cache areas),
// and both against the optimised serial baseline.
//
//	go run ./examples/tlp_partitioning
package main

import (
	"fmt"
	"log"

	"smtexplore/internal/core"
	"smtexplore/internal/kernels"
)

func main() {
	log.SetFlags(0)
	const n = 64

	serial, err := core.RunBenchmark(core.BenchmarkMM, kernels.Serial, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %8s %12s %10s %8s\n",
		"method", "cycles", "vs-ser", "l2-misses", "mclears", "flushes")
	fmt.Printf("%-12s %12d %8s %12d %10d %8d\n",
		"serial", serial.Cycles, "-", serial.L2MissesReported(),
		serial.MachineClears, serial.PipelineFlushes)

	for _, mode := range []kernels.Mode{kernels.TLPFine, kernels.TLPCoarse} {
		m, err := core.RunBenchmark(core.BenchmarkMM, mode, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12d %7.2fx %12d %10d %8d\n",
			mode, m.Cycles, float64(m.Cycles)/float64(serial.Cycles),
			m.L2MissesReported(), m.MachineClears, m.PipelineFlushes)
	}

	fmt.Println("\nFine-grained sharing puts both threads on the same cache lines:")
	fmt.Println("the sibling's stores hit the other thread's in-flight loads and")
	fmt.Println("trigger memory-order machine clears (mclears column) — one of the")
	fmt.Println("reasons the paper measures tlp-fine slower than tlp-coarse.")
}
