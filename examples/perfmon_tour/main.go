// A tour of the performance-monitoring library on a custom two-thread
// workload: program both logical processors, run, snapshot the counter
// bank, and read the events the paper's evaluation is built on —
// per-logical-CPU qualified, exactly like the monitoring registers the
// authors programmed.
//
//	go run ./examples/perfmon_tour
package main

import (
	"fmt"
	"log"

	"smtexplore/internal/core"
	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/syncprim"
	"smtexplore/internal/trace"
)

func main() {
	log.SetFlags(0)

	// A producer computing and publishing a flag, and a consumer that
	// spin-waits and then works on data the producer touched.
	var cells syncprim.CellAlloc
	ready := syncprim.NewFlag(&cells)

	producer := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 5000; i++ {
			e.Load(isa.F(i%4), 0x100000+uint64(i)*64)
			e.ALU(isa.FMul, isa.F(4+(i%4)), isa.F(i%4), isa.F(8))
			e.Store(isa.F(4+(i%4)), 0x200000+uint64(i)*64)
		}
		ready.Set(e, 1)
	})
	consumer := trace.Generate(func(e *trace.Emitter) {
		ready.Wait(e, syncprim.SpinPause, isa.CmpEQ, 1)
		for i := 0; i < 5000; i++ {
			e.Load(isa.F(i%4), 0x200000+uint64(i)*64) // re-reads producer data
			e.ALU(isa.FAdd, isa.F(4+(i%4)), isa.F(4+(i%4)), isa.F(i%4))
		}
	})

	m := smt.New(core.KernelMachine())
	m.LoadProgram(0, producer)
	m.LoadProgram(1, consumer)

	// Snapshots support interval measurement, like reading the MSRs
	// before and after a region of interest.
	before := m.Counters().Snapshot()
	if _, err := m.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	delta := m.Counters().Snapshot().Delta(before)

	fmt.Println("full counter bank (non-zero events):")
	fmt.Print(delta.Format())

	fmt.Println("\nthe paper's three headline events:")
	for _, ev := range []perfmon.Event{
		perfmon.L2ReadMisses, perfmon.ResourceStallCycles, perfmon.UopsRetired,
	} {
		fmt.Printf("  %-24s cpu0=%-10d cpu1=%-10d total=%d\n",
			ev, delta.Get(ev, 0), delta.Get(ev, 1), delta.Total(ev))
	}

	fmt.Println("\nsynchronisation visibility:")
	fmt.Printf("  consumer spin µops:   %d\n", delta.Get(perfmon.SpinUopsRetired, 1))
	fmt.Printf("  consumer spin flush:  %d (%d penalty cycles)\n",
		delta.Get(perfmon.PipelineFlushes, 1), delta.Get(perfmon.FlushPenaltyCycles, 1))
	fmt.Printf("  barrier wait cycles:  %d\n", delta.Get(perfmon.BarrierWaitCycles, 1))
}
