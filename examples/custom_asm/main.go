// Custom workloads in µop assembly: write the two logical processors'
// programs as text, assemble them with internal/uasm, and watch the
// pipeline with the tracer — no kernel code required.
//
//	go run ./examples/custom_asm
package main

import (
	"fmt"
	"log"

	"smtexplore/internal/core"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/uasm"
)

// A producer computes a block of FP work and publishes a flag; the
// consumer halts (relinquishing its partitioned resources) until the flag
// arrives, then runs its own block.
const producerSrc = `
# producer: FP work, then signal
loop 400
  load  f0, [0x100000] @1
  fmul  f1, f0, f2
  fadd  f3, f3, f1
  store f3, [0x200000]
end
flag c1 = 1
`

const consumerSrc = `
# consumer: sleep until the producer signals
halt c1 >= 1
loop 100
  iadd r0, r1, r2
  ilogic r3, r3, r4
end
`

func main() {
	log.SetFlags(0)

	m := smt.New(core.StreamMachine())
	tracer := smt.NewTracer(6)
	tracer.Attach(m)
	m.LoadProgram(0, uasm.MustParse(producerSrc))
	m.LoadProgram(1, uasm.MustParse(consumerSrc))

	res, err := m.Run(10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	c := m.Counters()
	fmt.Printf("completed=%v in %d cycles\n", res.Completed, m.Cycle())
	fmt.Printf("producer: %d instrs, CPI %.2f\n",
		c.Get(perfmon.InstrRetired, 0),
		float64(c.Get(perfmon.Cycles, 0))/float64(c.Get(perfmon.InstrRetired, 0)))
	fmt.Printf("consumer: %d instrs, halted %d cycles, %d wake transition(s)\n",
		c.Get(perfmon.InstrRetired, 1),
		c.Get(perfmon.HaltedCycles, 1),
		c.Get(perfmon.HaltTransitions, 1))

	fmt.Println("\nlast retired µops (A alloc, I issue, C complete, R retire):")
	fmt.Print(tracer.Timeline(0, m.Cycle()+1, 64))
}
