// Multiprogrammed workloads on the simulated hyper-threaded processor:
// four independent programs pinned round-robin onto the two logical CPUs
// (the paper's sched_setaffinity discipline), each run queue time-sliced
// with kernel context-switch overhead — the "multiprogrammed mixes" that
// Figure 2(c)'s integer×FP interactions anticipate.
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"

	"smtexplore/internal/core"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/sched"
	"smtexplore/internal/streams"
	"smtexplore/internal/trace"
)

func job(kind streams.Kind, n uint64, slot int) trace.Program {
	return trace.Limit(streams.Build(streams.Spec{
		Kind: kind, ILP: streams.MaxILP, Base: streams.DisjointBase(slot),
	}), n)
}

func main() {
	log.SetFlags(0)
	const per = 40_000

	// An FP-heavy and an integer-heavy job per logical CPU.
	m, err := sched.RunMultiprogrammed(core.StreamMachine(), sched.DefaultConfig(),
		500_000_000,
		job(streams.FAddS, per, 0),  // cpu0
		job(streams.IAddS, per, 1),  // cpu1
		job(streams.FMulS, per, 2),  // cpu0
		job(streams.ILoadS, per, 3), // cpu1
	)
	if err != nil {
		log.Fatal(err)
	}
	c := m.Counters()
	fmt.Printf("4 jobs x %d instructions, quantum %d, switch cost %d uops\n",
		per, sched.DefaultConfig().Quantum, sched.DefaultConfig().SwitchCost)
	fmt.Printf("finished in %d cycles\n\n", m.Cycle())
	for cpu := 0; cpu < 2; cpu++ {
		instr := c.Get(perfmon.InstrRetired, cpu)
		cyc := c.Get(perfmon.Cycles, cpu)
		fmt.Printf("cpu%d: %d instructions (incl. kernel switch paths), IPC %.2f\n",
			cpu, instr, float64(instr)/float64(cyc))
	}
	fmt.Printf("\nkernel overhead: %d extra instructions beyond the %d of the jobs\n",
		c.Total(perfmon.InstrRetired)-4*per, 4*per)
}
