// Helper-thread prefetching (speculative precomputation) on a custom
// workload: a strided reduction whose loads miss the caches. The example
// follows the paper's §3.2 methodology end to end:
//
//  1. profile the serial run to find the delinquent loads
//     (the Valgrind-analogue miss attribution),
//
//  2. distil a precomputation thread that prefetches just those loads one
//     span ahead, regulated by flag synchronisation,
//
//  3. compare the worker's L2 misses and runtime against serial.
//
//     go run ./examples/helper_thread
package main

import (
	"fmt"
	"log"

	"smtexplore/internal/core"
	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/profile"
	"smtexplore/internal/smt"
	"smtexplore/internal/syncprim"
	"smtexplore/internal/trace"
)

const (
	elements  = 24_000
	strideB   = 192 // three lines apart: defeats the hardware streamer
	base      = 0x0200_0000
	spanElems = 256
	tagGather = isa.Tag(7)
	tagOther  = isa.Tag(8)
	maxCycles = 500_000_000
)

// worker computes a strided reduction; spans publish progress when a
// prefetcher participates.
func worker(sync bool, wkStart, pfDone syncprim.Flag) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		span := int64(0)
		for i := 0; i < elements; i++ {
			if sync && i%spanElems == 0 {
				span++
				wkStart.Set(e, span)
				pfDone.Wait(e, syncprim.SpinPause, isa.CmpGE, span)
			}
			r := i
			e.TaggedLoad(isa.F(r%6), base+uint64(i)*strideB, tagGather)
			e.TaggedLoad(isa.F(6+(r&3)), 0x0600_0000+uint64(i%512)*8, tagOther)
			e.ALU(isa.FMul, isa.F(10+(r&3)), isa.F(r%6), isa.F(6+(r&3)))
			e.ALU(isa.FAdd, isa.F(14+(r&3)), isa.F(14+(r&3)), isa.F(10+(r&3)))
			e.ALU(isa.IAdd, isa.R(r&7), isa.R(28), isa.R(29))
			if r&3 == 3 {
				e.Branch()
			}
		}
	})
}

// prefetcher walks the delinquent-load addresses one span ahead.
func prefetcher(wkStart, pfDone syncprim.Flag) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		spans := (elements + spanElems - 1) / spanElems
		for s := 0; s < spans; s++ {
			if s > 0 {
				wkStart.Wait(e, syncprim.SpinPause, isa.CmpGE, int64(s))
			}
			lo, hi := s*spanElems, min((s+1)*spanElems, elements)
			for i := lo; i < hi; i++ {
				e.TaggedLoad(isa.F(20+(i&3)), base+uint64(i)*strideB, tagGather)
			}
			pfDone.Set(e, int64(s)+1)
		}
	})
}

func main() {
	log.SetFlags(0)
	mcfg := core.KernelMachine()

	// Step 1: serial run + delinquent-load profile.
	var cells syncprim.CellAlloc
	wkStart, pfDone := syncprim.NewFlag(&cells), syncprim.NewFlag(&cells)

	serial := smt.New(mcfg)
	serial.LoadProgram(0, worker(false, wkStart, pfDone))
	if _, err := serial.Run(maxCycles); err != nil {
		log.Fatal(err)
	}
	top := profile.DelinquentLoads(serial.Hierarchy(), 0.92)
	fmt.Printf("serial: %d cycles, worker L2 read misses %d\n",
		serial.Cycle(), serial.Hierarchy().Thread(0).L2ReadMisses)
	fmt.Println("delinquent loads covering ≥92% of misses:")
	for _, tm := range top {
		fmt.Printf("  tag %d: %d misses\n", tm.Tag, tm.Misses)
	}

	// Step 2+3: SPR run with the distilled prefetcher.
	spr := smt.New(mcfg)
	spr.LoadProgram(0, worker(true, wkStart, pfDone))
	spr.LoadProgram(1, prefetcher(wkStart, pfDone))
	if _, err := spr.Run(maxCycles); err != nil {
		log.Fatal(err)
	}
	c := spr.Counters()
	fmt.Printf("\nwith helper thread: %d cycles (%.2fx vs serial)\n",
		spr.Cycle(), float64(spr.Cycle())/float64(serial.Cycle()))
	fmt.Printf("  worker L2 read misses: %d (%.0f%% reduction)\n",
		spr.Hierarchy().Thread(0).L2ReadMisses,
		100*(1-float64(spr.Hierarchy().Thread(0).L2ReadMisses)/
			float64(serial.Hierarchy().Thread(0).L2ReadMisses)))
	fmt.Printf("  prefetcher retired %d program µops + %d spin µops\n",
		c.Get(perfmon.InstrRetired, 1), c.Get(perfmon.SpinUopsRetired, 1))
}
